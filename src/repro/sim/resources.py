"""Timeline resources with contention and utilization tracking.

A *timeline resource* models a hardware unit that serves one request at a
time (or a fixed number per cycle) and is reserved for a duration: a memory
controller, a functional unit, a network link, a DRAM bank.  Requests name
an earliest start time; the resource grants the later of that time and its
own next-free time, producing contention delays without a full event-driven
simulation.

This is the workhorse abstraction of the cycle-approximate models: mappings
describe their work as transactions against resources, and end-to-end
latency and utilization fall out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.trace.tracer import TRACK_SEP, active_tracer


@dataclass(frozen=True)
class Grant:
    """Result of a resource acquisition."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class TimelineResource:
    """A serially reusable unit: one transaction at a time.

    Parameters
    ----------
    name:
        Diagnostic label.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._next_free = 0.0
        self._busy = 0.0
        self._transactions = 0

    @property
    def next_free(self) -> float:
        """Earliest time a new transaction could begin."""
        return self._next_free

    @property
    def busy_cycles(self) -> float:
        """Total cycles spent serving transactions."""
        return self._busy

    @property
    def transactions(self) -> int:
        return self._transactions

    def acquire(self, earliest: float, duration: float) -> Grant:
        """Reserve the resource for ``duration`` cycles at or after
        ``earliest`` and return the granted interval."""
        if duration < 0:
            raise ValueError(f"negative duration {duration} on {self.name!r}")
        start = max(earliest, self._next_free)
        end = start + duration
        self._next_free = end
        self._busy += duration
        self._transactions += 1
        tracer = active_tracer()
        if tracer is not None:
            # Real interval, not cursor-placed: the grant knows exactly
            # when the resource served this transaction.
            tracer.span(
                self.name,
                f"resource{TRACK_SEP}{self.name}",
                duration,
                start=start,
                args={"wait": start - earliest},
            )
            tracer.count(f"resource.{self.name}.transactions")
        return Grant(start=start, end=end)

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy / horizon)

    def reset(self) -> None:
        self._next_free = 0.0
        self._busy = 0.0
        self._transactions = 0

    def __repr__(self) -> str:
        return (
            f"TimelineResource({self.name!r}, next_free={self._next_free:.1f},"
            f" busy={self._busy:.1f})"
        )


class ThroughputPort(TimelineResource):
    """A bandwidth-limited port that moves words at a fixed rate.

    Used for memory controllers (Imagine: 1 word/cycle each), DRAM data
    buses (VIRAM: 8 words/cycle sequential), Raw peripheral ports, and
    network links.  A transfer of ``words`` occupies the port for
    ``words / words_per_cycle`` cycles plus an optional fixed per-transfer
    overhead (e.g. a DRAM row activation).
    """

    def __init__(self, name: str, words_per_cycle: float) -> None:
        if words_per_cycle <= 0:
            raise ValueError(
                f"words_per_cycle must be positive, got {words_per_cycle}"
            )
        super().__init__(name)
        self.words_per_cycle = words_per_cycle
        self._words = 0.0

    @property
    def words_transferred(self) -> float:
        return self._words

    def transfer(
        self, earliest: float, words: float, overhead: float = 0.0
    ) -> Grant:
        """Move ``words`` through the port at or after ``earliest``.

        ``overhead`` adds fixed busy cycles to the transfer (row switches,
        packet headers) that consume port time but move no data.
        """
        if words < 0:
            raise ValueError(f"negative transfer of {words} words")
        duration = words / self.words_per_cycle + overhead
        grant = self.acquire(earliest, duration)
        self._words += words
        return grant

    def transfer_cycles(self, words: float, overhead: float = 0.0) -> float:
        """Duration of a transfer without reserving the port."""
        if words < 0:
            raise ValueError(f"negative transfer of {words} words")
        return words / self.words_per_cycle + overhead

    def reset(self) -> None:
        super().reset()
        self._words = 0.0


class IssueSlots:
    """An issue-bandwidth accountant for a ``width``-wide in-order front end.

    This does not track per-cycle slot occupancy; it converts instruction
    counts into issue cycles (``ceil(instructions / width)`` in the
    continuous limit) and accumulates utilization, which is the right
    granularity for the block-level models.
    """

    def __init__(self, name: str, width: int) -> None:
        if width <= 0:
            raise ValueError(f"issue width must be positive, got {width}")
        self.name = name
        self.width = width
        self._instructions = 0.0

    @property
    def instructions(self) -> float:
        return self._instructions

    def issue_cycles(self, instructions: float, *, record: bool = True) -> float:
        """Cycles needed to issue ``instructions``; optionally records them."""
        if instructions < 0:
            raise ValueError(f"negative instruction count {instructions}")
        if record:
            self._instructions += instructions
            tracer = active_tracer()
            if tracer is not None:
                tracer.count(f"issue.{self.name}.instructions", instructions)
        return instructions / self.width

    def issue_cycles_exact(self, instructions: int) -> int:
        """Integer-cycle variant: ``ceil(instructions / width)``."""
        if instructions < 0:
            raise ValueError(f"negative instruction count {instructions}")
        return math.ceil(instructions / self.width)

    def utilization(self, cycles: float) -> float:
        """Fraction of issue slots used over ``cycles`` executed cycles."""
        if cycles <= 0:
            return 0.0
        return min(1.0, self._instructions / (cycles * self.width))

    def reset(self) -> None:
        self._instructions = 0.0

    def __repr__(self) -> str:
        return f"IssueSlots({self.name!r}, width={self.width})"
