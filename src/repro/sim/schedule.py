"""Dependency-graph earliest-start scheduling over timeline resources.

Stream programs (Imagine) and block pipelines (Raw, VIRAM) are static
dataflow graphs: each task needs one resource for a known duration and may
depend on earlier tasks.  :class:`DependencyScheduler` computes start/end
times by topological order, letting double-buffered overlap, serialization
bottlenecks, and resource contention emerge without a discrete-event
simulation.

The scheduler is deterministic: tasks are processed in submission order,
which models an in-order issue unit (Imagine's stream controller issues
stream operations in program order; Raw's tiles execute their static
schedules in order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ScheduleError
from repro.sim.resources import TimelineResource


@dataclass
class Task:
    """One unit of scheduled work.

    Parameters
    ----------
    name:
        Unique task identifier.
    resource:
        The :class:`TimelineResource` the task occupies, or ``None`` for a
        pure synchronisation point (zero-width join).
    duration:
        Busy cycles on the resource.
    deps:
        Names of tasks that must finish before this task may start.
    earliest:
        Additional lower bound on the start time.
    """

    name: str
    resource: Optional[TimelineResource]
    duration: float
    deps: Sequence[str] = field(default_factory=tuple)
    earliest: float = 0.0


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of a task on the timeline."""

    name: str
    start: float
    end: float
    resource: Optional[str]


class DependencyScheduler:
    """Greedy in-order earliest-start scheduler.

    Tasks are submitted with :meth:`add` and placed immediately: the start
    time is the max of the task's ``earliest`` bound, its dependencies'
    finish times, and the resource's next-free time.  Because placement is
    immediate and in submission order, later tasks can never displace
    earlier ones — matching in-order issue hardware.
    """

    def __init__(self) -> None:
        self._placed: Dict[str, ScheduledTask] = {}
        self._order: List[str] = []

    def add(self, task: Task) -> ScheduledTask:
        """Place ``task`` and return its scheduled interval."""
        if task.name in self._placed:
            raise ScheduleError(f"duplicate task name {task.name!r}")
        if task.duration < 0:
            raise ScheduleError(
                f"task {task.name!r} has negative duration {task.duration}"
            )
        ready = task.earliest
        for dep in task.deps:
            if dep not in self._placed:
                raise ScheduleError(
                    f"task {task.name!r} depends on unknown/not-yet-placed "
                    f"task {dep!r} (scheduler is in-order)"
                )
            ready = max(ready, self._placed[dep].end)
        if task.resource is None:
            start = ready
            end = ready + task.duration
            resource_name = None
        else:
            grant = task.resource.acquire(ready, task.duration)
            start, end = grant.start, grant.end
            resource_name = task.resource.name
        placed = ScheduledTask(
            name=task.name, start=start, end=end, resource=resource_name
        )
        self._placed[task.name] = placed
        self._order.append(task.name)
        return placed

    def get(self, name: str) -> ScheduledTask:
        """Placement of a previously added task."""
        try:
            return self._placed[name]
        except KeyError:
            raise ScheduleError(f"unknown task {name!r}") from None

    def end_time(self, name: str) -> float:
        return self.get(name).end

    @property
    def makespan(self) -> float:
        """Finish time of the latest task (0.0 if empty)."""
        if not self._placed:
            return 0.0
        return max(t.end for t in self._placed.values())

    @property
    def tasks(self) -> Tuple[ScheduledTask, ...]:
        """All placed tasks in submission order."""
        return tuple(self._placed[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._placed)


def critical_span(tasks: Sequence[ScheduledTask]) -> float:
    """Span from the earliest start to the latest end of ``tasks``."""
    if not tasks:
        return 0.0
    return max(t.end for t in tasks) - min(t.start for t in tasks)
