"""A compact discrete-event simulation engine.

Most of the machine models in this library use static timeline scheduling
(:mod:`repro.sim.schedule`), but genuinely dynamic behaviour — network
packet interleaving on Raw's dynamic network, bank queueing under irregular
gather traffic — is easier to express with events.  This engine provides
the minimum needed: a time-ordered event heap with stable FIFO ordering for
simultaneous events, callback scheduling, and a run loop.

Events carry a callable; processes are expressed as callbacks that schedule
their own continuations.  This keeps the engine free of generator/coroutine
magic (per the project style guides: explicit over clever).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.trace.tracer import Tracer, active_tracer


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence number)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _engine: Optional["Engine"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Idempotent; cancelling an event that already ran (or was already
        discarded) is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancel()


class Engine:
    """Time-ordered event executor.

    Examples
    --------
    >>> eng = Engine()
    >>> seen = []
    >>> _ = eng.schedule(5.0, lambda: seen.append("b"))
    >>> _ = eng.schedule(1.0, lambda: seen.append("a"))
    >>> eng.run()
    5.0
    >>> seen
    ['a', 'b']
    """

    #: Lazy-compaction thresholds: rebuild the heap once cancelled
    #: events both exceed this count and outnumber live ones.
    _COMPACT_MIN_CANCELLED = 64

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._cancelled_in_heap = 0
        self._scheduled = 0
        self._cancelled_total = 0
        #: Explicitly attached tracer; when ``None`` the engine falls
        #: back to the process-wide :func:`active_tracer` per dispatch,
        #: so ``with tracing():`` observes engines it did not construct.
        self.tracer = tracer

    def _trace(self) -> Optional[Tracer]:
        return self.tracer if self.tracer is not None else active_tracer()

    @property
    def now(self) -> float:
        """Current simulation time (cycles)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled on this engine."""
        return self._scheduled

    @property
    def events_cancelled(self) -> int:
        """Total events ever cancelled (whether or not still queued)."""
        return self._cancelled_total

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def conservation_ok(self) -> bool:
        """Event conservation: every scheduled event is exactly one of
        processed, cancelled, or still pending.  Holds at every point in
        the engine's lifetime; ``repro.check`` asserts it as an invariant
        of any event-driven simulation.
        """
        return self._scheduled == (
            self._processed + self._cancelled_total + self.pending
        )

    def _note_cancel(self) -> None:
        """Bookkeeping callback from :meth:`Event.cancel`."""
        self._cancelled_in_heap += 1
        self._cancelled_total += 1
        # Lazy compaction: when cancelled tombstones dominate the heap
        # they cost O(log n) per pop for no work — rebuild without them.
        if (
            self._cancelled_in_heap > self._COMPACT_MIN_CANCELLED
            and 2 * self._cancelled_in_heap > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_in_heap = 0

    def schedule(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now={self._now}"
            )
        event = Event(
            time=time, seq=next(self._seq), action=action, _engine=self
        )
        heapq.heappush(self._heap, event)
        self._scheduled += 1
        tracer = self._trace()
        if tracer is not None:
            tracer.count("engine.scheduled")
        return event

    def schedule_after(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule(self._now + delay, action)

    def step(self) -> bool:
        """Process the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            # Detach: a later cancel() on a popped event must not touch
            # the heap bookkeeping.
            event._engine = None
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            tracer = self._trace()
            if tracer is not None:
                tracer.instant(
                    "dispatch",
                    "engine",
                    ts=event.time,
                    args={"seq": event.seq},
                )
                tracer.count("engine.dispatched")
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or past ``until``); returns now.

        With ``until`` set, events at times strictly greater than ``until``
        remain queued and the clock advances to ``until`` at most.
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                head._engine = None
                self._cancelled_in_heap -= 1
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return self._now
            self.step()
        return self._now
