"""Lightweight statistics helpers used across the machine models."""

from __future__ import annotations

import math
from collections import Counter as _Counter
from typing import Dict, Iterable, Tuple


class Counter:
    """A named integer event counter with a tally per label.

    Machine models use one :class:`Counter` per event family, e.g. DRAM
    row activations per bank or instruction counts per category.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._tally: "_Counter[str]" = _Counter()

    def add(self, label: str, count: float = 1) -> None:
        """Add ``count`` events under ``label``."""
        if count < 0:
            raise ValueError(f"negative count {count} for {label!r}")
        self._tally[label] += count

    def get(self, label: str) -> float:
        """Events recorded under ``label`` (0 if none)."""
        return self._tally.get(label, 0)

    @property
    def total(self) -> float:
        """Sum over all labels."""
        return sum(self._tally.values())

    def items(self) -> Iterable[Tuple[str, float]]:
        return tuple(self._tally.items())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._tally)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, total={self.total})"


class RunningMean:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two observations."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    The paper quotes VIRAM's EEMBC result as a geometric mean normalised by
    clock frequency; the evaluation harness uses the same aggregation for
    cross-kernel speedup summaries.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def utilization(busy: float, total: float) -> float:
    """Busy fraction, clamped to [0, 1]; 0.0 when ``total`` is zero."""
    if total <= 0:
        return 0.0
    return min(1.0, max(0.0, busy / total))
