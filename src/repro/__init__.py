"""repro — reproduction of Suh et al., "A Performance Analysis of PIM,
Stream Processing, and Tiled Processing on Memory-Intensive Signal
Processing Kernels" (ISCA 2003).

The library provides cycle-approximate models of the paper's four
platforms (VIRAM, Imagine, Raw, PowerPC G4/AltiVec), functional
implementations of its three kernels (corner turn, CSLC, beam steering),
the kernel->machine mappings of §3, and an evaluation harness regenerating
every table and figure of §4.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import run_kernel
    run = run_kernel("corner_turn", "viram")
    print(run.breakdown.format())
"""

from repro.calibration import DEFAULT_CALIBRATION, Calibration

__version__ = "1.0.0"

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "run_kernel",
    "__version__",
]


def run_kernel(kernel: str, machine: str, **kwargs):
    """Run a named kernel on a named machine; returns a ``KernelRun``.

    Thin convenience wrapper over :func:`repro.mappings.registry.run`.
    Imported lazily so that ``import repro`` stays cheap.
    """
    from repro.mappings.registry import run

    return run(kernel, machine, **kwargs)
