"""VIRAM: the Berkeley processor-in-memory vector prototype (§2.1).

"The VIRAM contains two vector-processing units in addition to a
scalar-processing unit. ... a vector functional unit can be partitioned
into ... 8 units for 32-bit operations.  Some operations are allowed to
execute on ALU0 only.  It has [an] 8K vector register file (32 registers).
It has 13 Mbytes of DRAM.  There is a 256-bit data path between the
processing units and DRAM.  The DRAM is partitioned into two wings, each
of which has four banks.  It can access eight sequential 32-bit data
elements per clock cycle.  However, since there are four address
generators, it can access only four strided 32-bit ... elements per
cycle."
"""

from repro.arch.viram.config import ViramConfig
from repro.arch.viram.machine import VIRAM_SPEC, ViramMachine

__all__ = ["VIRAM_SPEC", "ViramConfig", "ViramMachine"]
