"""Symbolic vector instruction streams for VIRAM.

The VIRAM CSLC mapping prices its kernel with a composite model —
FP issue on VFU0, shuffle issue on VFU1, memory traffic, and a
calibrated per-instruction dead time (§4.3's x1.41 "memory latency and
vector startup").  This module provides the finer-grained validator: a
symbolic vector instruction stream (unit, vector length, dependencies)
scheduled on the machine's three issue resources, where dead time is
charged *only* on dependent back-to-back instructions — so the composite
model's flat per-instruction charge is justified by the butterfly
dataflow's chain structure rather than assumed.

:func:`fft_stream` builds the hand-vectorised FFT's stream (vectorised
across sub-bands at the maximum vector length, shuffles feeding FP ops
stage by stage), and :func:`schedule_stream` runs any stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.viram.machine import ViramMachine
from repro.errors import ConfigError, ScheduleError
from repro.kernels.fft import FFTPlan

UNITS = ("fp", "shuffle", "load", "store")


@dataclass(frozen=True)
class VectorInstruction:
    """One vector instruction: ``elements`` element-ops on ``unit``."""

    name: str
    unit: str
    elements: float
    deps: Tuple[str, ...] = ()
    strided: bool = False

    def __post_init__(self) -> None:
        if self.unit not in UNITS:
            raise ConfigError(f"unknown unit {self.unit!r}; known: {UNITS}")
        if self.elements < 0:
            raise ConfigError(f"negative element count {self.elements}")


@dataclass(frozen=True)
class VectorSchedule:
    """Outcome of scheduling a vector stream."""

    makespan: float
    fp_busy: float
    shuffle_busy: float
    memory_busy: float
    dead_time_total: float
    instructions: int


def schedule_stream(
    instructions: Sequence[VectorInstruction],
    machine: Optional[ViramMachine] = None,
) -> VectorSchedule:
    """Schedule a vector instruction stream on VFU0 / VFU1 / memory.

    FP issues on VFU0 (8 element-ops/cycle), shuffles on VFU1 (8/cycle),
    loads/stores on the memory unit (8/cycle sequential, 4/cycle
    strided).  An instruction whose producer finished on a *different*
    time step pays the calibrated dead time (dependency wait + vector
    start-up) before issuing — chained independent instructions pay
    nothing, which is what vector chaining buys.
    """
    machine = machine or ViramMachine()
    rate = machine.config.lane_ops_per_cycle
    seq = machine.config.seq_words_per_cycle
    strided = machine.config.strided_words_per_cycle
    dead = machine.cal.vector_dead_time

    next_free = {"fp": 0.0, "shuffle": 0.0, "memory": 0.0}
    busy = {"fp": 0.0, "shuffle": 0.0, "memory": 0.0}
    finish: Dict[str, float] = {}
    dead_total = 0.0
    makespan = 0.0

    for instr in instructions:
        for dep in instr.deps:
            if dep not in finish:
                raise ScheduleError(
                    f"instruction {instr.name!r} depends on unknown/later "
                    f"instruction {dep!r}"
                )
        if instr.name in finish:
            raise ScheduleError(f"duplicate instruction {instr.name!r}")

        if instr.unit == "fp":
            resource, duration = "fp", instr.elements / rate
        elif instr.unit == "shuffle":
            resource, duration = "shuffle", instr.elements / rate
        else:
            unit_rate = strided if instr.strided else seq
            resource, duration = "memory", instr.elements / unit_rate

        ready = 0.0
        dependent = False
        for dep in instr.deps:
            if finish[dep] > ready:
                ready = finish[dep]
            dependent = True
        start = max(ready, next_free[resource])
        if dependent and ready >= next_free[resource]:
            # The unit sat waiting for the producer: the dependency gap
            # plus vector start-up is exposed.
            start += dead
            dead_total += dead
        end = start + duration
        next_free[resource] = end
        busy[resource] += duration
        finish[instr.name] = end
        makespan = max(makespan, end)

    return VectorSchedule(
        makespan=makespan,
        fp_busy=busy["fp"],
        shuffle_busy=busy["shuffle"],
        memory_busy=busy["memory"],
        dead_time_total=dead_total,
        instructions=len(instructions),
    )


def fft_stream(
    plan: FFTPlan,
    batch: int = 64,
    machine: Optional[ViramMachine] = None,
) -> List[VectorInstruction]:
    """The hand-vectorised FFT's instruction stream for one batch.

    Vectorised across ``batch`` sub-bands (VL = batch): each stage emits,
    per butterfly, one shuffle instruction aligning its operands and the
    dependent FP instructions of the twiddle multiply and butterfly
    core, chained stage to stage — §2.4's "inner loops were
    hand-vectorized using assembly code" structure.
    """
    machine = machine or ViramMachine()
    max_vl = machine.config.max_vl_32bit
    if not 1 <= batch <= max_vl:
        raise ConfigError(f"batch must be in [1, {max_vl}]")
    stream: List[VectorInstruction] = []
    prev_stage_last: Tuple[str, ...] = ()
    for stage_idx, stage in enumerate(plan.stages):
        last_in_stage = None
        flops_per_bf = stage.flops / stage.butterflies
        shuffle_per_bf = 2.0 * stage.radix  # operands aligned in and out
        # One instruction per scalar op slot: VL = batch element-ops.
        n_shuffle = max(1, round(shuffle_per_bf))
        n_fp = max(1, round(flops_per_bf))
        for bf in range(stage.butterflies):
            shuffle_names = []
            for i in range(n_shuffle):
                name = f"s{stage_idx}.b{bf}.sh{i}"
                stream.append(
                    VectorInstruction(
                        name=name,
                        unit="shuffle",
                        elements=float(batch) * shuffle_per_bf / n_shuffle,
                        deps=prev_stage_last,
                    )
                )
                shuffle_names.append(name)
            # FP ops chain within the butterfly (twiddle multiply feeds
            # the core additions), the first depending on the shuffles.
            last = None
            for i in range(n_fp):
                name = f"s{stage_idx}.b{bf}.fp{i}"
                deps = (last,) if last else tuple(shuffle_names[-1:])
                stream.append(
                    VectorInstruction(
                        name=name,
                        unit="fp",
                        elements=float(batch) * flops_per_bf / n_fp,
                        deps=deps,
                    )
                )
                last = name
            last_in_stage = last
        prev_stage_last = (last_in_stage,) if last_in_stage else ()
    return stream
