"""VIRAM microarchitectural parameters (§2.1 published values)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MIB, WORD_BYTES


@dataclass(frozen=True)
class ViramConfig:
    """Parameters of the VIRAM implementation the paper evaluated.

    Derived quantities the performance model uses:

    * sequential memory throughput: 8 x 32-bit words/cycle (256-bit
      datapath);
    * strided/indexed throughput: 4 words/cycle (four address generators);
    * per-VFU issue: 8 x 32-bit element operations/cycle, floating point
      restricted to VFU0 ("Some operations are allowed to execute on ALU0
      only" — the §4.3 analysis attributes a x1.52 CSLC factor to "the
      second vector arithmetic unit [not executing] vector floating point
      instructions");
    * maximum 32-bit vector length: 64 elements (32 registers x 2048 bits).
    """

    clock_hz: float = 200e6
    n_vfus: int = 2
    lane_ops_per_cycle: int = 8
    fp_on_vfu0_only: bool = True
    vector_registers: int = 32
    vector_register_bits: int = 2048
    address_generators: int = 4
    seq_words_per_cycle: int = 8
    onchip_dram_bytes: int = 13 * MIB
    wings: int = 2
    banks_per_wing: int = 4
    dram_row_words: int = 1024
    offchip_dma_words_per_cycle: int = 2

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.n_vfus < 1 or self.lane_ops_per_cycle < 1:
            raise ConfigError("need at least one VFU with one lane")
        if self.address_generators < 1:
            raise ConfigError("need at least one address generator")
        if self.wings < 1 or self.banks_per_wing < 1:
            raise ConfigError("need at least one DRAM wing and bank")
        if self.vector_register_bits % 32:
            raise ConfigError("vector registers must hold whole 32-bit words")

    @property
    def max_vl_32bit(self) -> int:
        """Maximum vector length for 32-bit elements."""
        return self.vector_register_bits // 32

    @property
    def strided_words_per_cycle(self) -> int:
        """Strided/indexed element throughput (address-generator bound)."""
        return self.address_generators

    @property
    def vector_register_file_bytes(self) -> int:
        return self.vector_registers * self.vector_register_bits // 8

    @property
    def total_banks(self) -> int:
        return self.wings * self.banks_per_wing

    @property
    def onchip_dram_words(self) -> int:
        return self.onchip_dram_bytes // WORD_BYTES
