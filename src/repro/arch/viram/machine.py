"""The VIRAM machine model: vector issue + on-chip banked DRAM + TLB.

The model exposes small costing methods the kernel mappings compose:

* :meth:`ViramMachine.load` / :meth:`ViramMachine.store` — stream a word
  pattern through the on-chip DRAM at the sequential (8 words/cycle) or
  strided/indexed (4 words/cycle, address-generator-bound) rate, with
  open-row state tracked per bank (2 wings x 4 banks = 8 independent
  banks) and the TLB fed the same addresses.
* :meth:`ViramMachine.vfu_cycles` — issue time for vector element
  operations at 8 per cycle per VFU; floating point is restricted to VFU0.
* :meth:`ViramMachine.dead_time` — exposed per-instruction dependency/
  startup cycles (§4.4's "waiting for the results from previous vector
  operations and the cycles needed to initialize the vector operations").

Strided column walks interact with bank geometry: a walk whose DRAM-row
advance shares a factor with the bank count concentrates on a bank
subset; §3.1's "padding added to the matrix rows to avoid DRAM bank
conflicts" is realised by :func:`padded_pitch`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arch.base import MachineSpec
from repro.calibration import DEFAULT_CALIBRATION, ViramCalibration
from repro.errors import CapacityError, ConfigError
from repro.memory.dram import DRAM, DRAMBatchCost, DRAMConfig, DRAMCost
from repro.memory.streams import AccessPattern
from repro.memory.tlb import TLB
from repro.arch.viram.config import ViramConfig
from repro.trace.tracer import active_tracer
from repro.units import WORD_BYTES

#: Table 2 row: 200 MHz, 16 ALUs, 3.2 peak GFLOPS.  The per-cycle flop
#: peak of 16 is the Table 2 basis (both VFUs); the FP-capable issue rate
#: is 8/cycle (VFU0 only), which is exactly §4.3's x1.52 CSLC factor.
VIRAM_SPEC = MachineSpec(
    name="viram",
    display_name="VIRAM",
    clock_hz=200e6,
    n_alus=16,
    peak_gflops=3.2,
    flops_per_cycle=16.0,
)


class ViramMachine:
    """Stateful VIRAM resources plus costing methods (see module doc)."""

    spec = VIRAM_SPEC

    def __init__(
        self,
        config: Optional[ViramConfig] = None,
        calibration: Optional[ViramCalibration] = None,
    ) -> None:
        self.config = config or ViramConfig()
        self.cal = calibration or DEFAULT_CALIBRATION.viram
        self.dram = DRAM(
            DRAMConfig(
                name="viram-onchip",
                banks=self.config.total_banks,
                row_words=self.config.dram_row_words,
                row_cycle=self.cal.dram_row_cycle,
                access_latency=self.cal.exposed_load_latency,
                activation_policy="bank-parallel",
            )
        )
        self.tlb = TLB(
            entries=self.cal.tlb_entries,
            page_words=self.cal.page_words,
            miss_cycles=self.cal.tlb_miss_cycles,
        )

    def reset(self) -> None:
        self.dram.reset()
        self.tlb.reset()

    # ------------------------------------------------------------------
    # Memory system
    # ------------------------------------------------------------------

    def check_fits_onchip(self, nbytes: int, what: str) -> None:
        """The paper sized workloads to fit VIRAM's 13 MB (§3.1)."""
        if nbytes > self.config.onchip_dram_bytes:
            raise CapacityError(
                f"{what} ({nbytes} B) exceeds VIRAM on-chip DRAM "
                f"({self.config.onchip_dram_bytes} B)"
            )

    def load(self, pattern: AccessPattern, *, strided: bool) -> DRAMCost:
        """Vector load of ``pattern`` from the on-chip DRAM.

        Sequential (unit-stride) loads move 8 words/cycle through the
        256-bit datapath; strided or indexed loads are limited to 4
        words/cycle by the address generators.  The TLB sees the same
        address stream; its misses are charged by the mapping.
        """
        rate = (
            self.config.strided_words_per_cycle
            if strided
            else self.config.seq_words_per_cycle
        )
        cost = self.dram.access(pattern, rate_words_per_cycle=rate, kind="read")
        self.tlb.access_addresses(pattern.addresses())
        return cost

    def store(self, pattern: AccessPattern, *, strided: bool) -> DRAMCost:
        """Vector store of ``pattern`` to the on-chip DRAM (rates as for
        :meth:`load`)."""
        rate = (
            self.config.strided_words_per_cycle
            if strided
            else self.config.seq_words_per_cycle
        )
        cost = self.dram.access(pattern, rate_words_per_cycle=rate, kind="write")
        self.tlb.access_addresses(pattern.addresses())
        return cost

    def stream_batch(self, addresses, seg_lengths, strided) -> DRAMBatchCost:
        """Cost a program-ordered run of vector memory segments at once.

        ``addresses`` is the concatenated word-address stream; segment
        ``i`` spans the next ``seg_lengths[i]`` addresses and issues at
        the strided (4 words/cycle) or sequential (8 words/cycle) rate
        per ``strided[i]``.  Equivalent to a :meth:`load`/:meth:`store`
        call per segment — same DRAM open-row evolution, same TLB miss
        stream — but one vectorised pass, which is what makes blocked
        mappings with tens of thousands of tiny tiles fast.
        """
        strided = np.asarray(strided, dtype=bool)
        rates = np.where(
            strided,
            float(self.config.strided_words_per_cycle),
            float(self.config.seq_words_per_cycle),
        )
        cost = self.dram.access_run(addresses, seg_lengths, rates)
        self.tlb.access_addresses(addresses)
        return cost

    # ------------------------------------------------------------------
    # Vector issue
    # ------------------------------------------------------------------

    def vfu_cycles(self, element_ops: float) -> float:
        """Issue cycles for ``element_ops`` on one VFU (8 element-ops per
        cycle at 32-bit precision)."""
        if element_ops < 0:
            raise ConfigError(f"negative element op count {element_ops}")
        cycles = element_ops / self.config.lane_ops_per_cycle
        tracer = active_tracer()
        if tracer is not None and cycles > 0:
            tracer.span(
                "vfu issue",
                "viram/vfu",
                cycles,
                args={"element_ops": element_ops},
            )
        return cycles

    def fp_issue_cycles(self, flops: float) -> float:
        """Issue cycles for floating-point element operations.

        FP is restricted to VFU0 when ``fp_on_vfu0_only`` (the hardware's
        documented limitation), halving FP issue bandwidth relative to the
        16-op/cycle Table 2 peak — the mechanism behind §4.3's x1.52.
        """
        if flops < 0:
            raise ConfigError(f"negative element op count {flops}")
        # The vfu_cycles formula is inlined so one costing call emits
        # exactly one span on the vfu track.
        if self.config.fp_on_vfu0_only:
            cycles = flops / self.config.lane_ops_per_cycle
        else:
            cycles = flops / (
                self.config.n_vfus * self.config.lane_ops_per_cycle
            )
        tracer = active_tracer()
        if tracer is not None and cycles > 0:
            tracer.span(
                "fp issue", "viram/vfu", cycles, args={"flops": flops}
            )
        return cycles

    def instruction_count(
        self, element_ops: float, vl: Optional[int] = None
    ) -> float:
        """Vector instructions needed for ``element_ops`` at vector length
        ``vl`` (default: the maximum 32-bit VL of 64)."""
        if vl is None:
            vl = self.config.max_vl_32bit
        if vl <= 0 or vl > self.config.max_vl_32bit:
            raise ConfigError(
                f"vl must be in [1, {self.config.max_vl_32bit}], got {vl}"
            )
        if element_ops < 0:
            raise ConfigError(f"negative element op count {element_ops}")
        return element_ops / vl

    def dead_time(self, n_instructions: float) -> float:
        """Exposed dependency-wait/startup cycles for an instruction
        stream (§4.4's gap between the compute lower bound and simulated
        cycles)."""
        if n_instructions < 0:
            raise ConfigError(f"negative instruction count {n_instructions}")
        cycles = n_instructions * self.cal.vector_dead_time
        tracer = active_tracer()
        if tracer is not None and cycles > 0:
            tracer.span(
                "dead time",
                "viram/vfu",
                cycles,
                args={"instructions": n_instructions},
            )
        return cycles

    def register_file_words(self) -> int:
        """32-bit words the vector register file can hold (8 KB)."""
        return self.config.vector_register_file_bytes // WORD_BYTES

    def blocks_for(self, rows: int, cols: int, block: int) -> int:
        """Number of ``block`` x ``block`` tiles covering a matrix."""
        if rows % block or cols % block:
            raise ConfigError(
                f"matrix {rows}x{cols} not divisible by block {block}"
            )
        return (rows // block) * (cols // block)

    def __repr__(self) -> str:
        return f"ViramMachine(clock={self.config.clock_hz / 1e6:.0f} MHz)"


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def padded_pitch(cols: int, machine: ViramMachine) -> int:
    """Row pitch avoiding DRAM bank conflicts on strided column walks.

    §3.1: "We used strided load operations with padding added to the
    matrix rows to avoid DRAM bank conflicts."  Delegates to
    :func:`repro.memory.dram.pad_pitch_for_banks` with the on-chip DRAM
    geometry.
    """
    from repro.memory.dram import pad_pitch_for_banks

    return pad_pitch_for_banks(cols, machine.dram.config)
