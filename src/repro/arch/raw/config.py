"""Raw microarchitectural parameters (§2.3 published values)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import KIB


@dataclass(frozen=True)
class RawConfig:
    """Parameters of the Raw implementation the paper evaluated.

    16 single-issue MIPS-like tiles in a 4x4 mesh at 300 MHz.  Each tile's
    128 KB of SRAM is split between switch instructions, tile instructions
    and data; ``tile_data_kib`` is the data share (the §3.1 corner turn
    operates on "64x64 word blocks that fit in a single local tile
    memory" — 16 KB — and the 2 MB aggregate the matrix must exceed is
    16 tiles x 128 KB).  Table 1 gives the peak memory rates: 16
    words/cycle on-chip (one load/store per tile per cycle) and 28
    words/cycle aggregate through the peripheral DRAM ports.
    """

    clock_hz: float = 300e6
    mesh_rows: int = 4
    mesh_cols: int = 4
    tile_sram_kib: int = 128
    tile_data_kib: int = 32
    static_link_words_per_cycle: int = 1
    static_nearest_latency: int = 3
    static_hop_latency: int = 1
    dynamic_packet_header_words: int = 1
    offchip_words_per_cycle: int = 28
    dram_ports: int = 16

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.mesh_rows < 1 or self.mesh_cols < 1:
            raise ConfigError("mesh dimensions must be positive")
        if self.tile_data_kib <= 0 or self.tile_data_kib > self.tile_sram_kib:
            raise ConfigError("tile data memory must fit in tile SRAM")
        if self.offchip_words_per_cycle < 1:
            raise ConfigError("off-chip bandwidth must be positive")
        if self.dram_ports < 1:
            raise ConfigError("need at least one DRAM port")

    @property
    def tiles(self) -> int:
        return self.mesh_rows * self.mesh_cols

    @property
    def tile_data_bytes(self) -> int:
        return self.tile_data_kib * KIB

    @property
    def aggregate_local_memory_bytes(self) -> int:
        """The "2 MB" the corner-turn matrix was sized to exceed (§3.1)."""
        return self.tiles * self.tile_sram_kib * KIB

    @property
    def onchip_words_per_cycle(self) -> int:
        """Table 1's on-chip rate: one load/store per tile per cycle."""
        return self.tiles
