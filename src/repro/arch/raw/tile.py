"""Per-tile instruction-stream execution for Raw.

The Raw mappings cost tile work at one instruction per cycle plus a
calibrated local-memory stall fraction.  This module provides the
finer-grained validator: a single-issue, in-order MIPS-style pipeline
executing an instruction-category stream with the classic hazards —

* a one-cycle load-use interlock when a load's consumer follows
  immediately (a fraction of loads in compiled code),
* a taken-branch bubble per loop back-edge,
* local-SRAM port contention when the switch processor streams data
  through the same memory a load/store targets.

Programs are category *segments* (e.g. one butterfly = 6 loads, 10
flops, 4 stores, 5 address ops, 3 loop ops) with iteration counts, so a
whole CSLC sub-band set executes in microseconds while preserving the
hazard structure.  The tests compare the executor's cycles against the
block-level model's (instructions + calibrated stall fraction) and
require agreement within a few percent — the same validation pattern as
:mod:`repro.arch.imagine.microcode` on the Imagine side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError

#: Recognised instruction categories.
CATEGORIES = ("alu", "load", "store", "addr", "branch", "network")

#: Fraction of loads whose consumer issues in the very next slot in
#: compiled inner loops (a compiler schedules most butterfly loads ahead
#: of their uses, but the tail of each group interlocks).
DEFAULT_LOAD_USE_FRACTION = 0.3

#: Pipeline bubbles per load-use hazard and per taken branch.
LOAD_USE_BUBBLE = 1
BRANCH_BUBBLE = 1


@dataclass(frozen=True)
class Segment:
    """A homogeneous run of instructions inside a loop body."""

    category: str
    count: float

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ConfigError(
                f"unknown category {self.category!r}; known: {CATEGORIES}"
            )
        if self.count < 0:
            raise ConfigError(f"negative instruction count {self.count}")


@dataclass(frozen=True)
class TileProgram:
    """A loop nest flattened to segments x iterations.

    ``body`` is one iteration's segments in order; the loop executes
    ``iterations`` times, ending each iteration with its branch
    segments' back-edges.
    """

    body: Tuple[Segment, ...]
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ConfigError(f"negative iterations {self.iterations}")

    @property
    def instructions_per_iteration(self) -> float:
        return sum(s.count for s in self.body)

    @property
    def total_instructions(self) -> float:
        return self.instructions_per_iteration * self.iterations

    def category_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for segment in self.body:
            totals[segment.category] = (
                totals.get(segment.category, 0.0)
                + segment.count * self.iterations
            )
        return totals


@dataclass(frozen=True)
class TileExecution:
    """Cycle accounting from executing a :class:`TileProgram`."""

    instructions: float
    issue_cycles: float
    load_use_bubbles: float
    branch_bubbles: float
    memory_port_conflicts: float

    @property
    def cycles(self) -> float:
        return (
            self.issue_cycles
            + self.load_use_bubbles
            + self.branch_bubbles
            + self.memory_port_conflicts
        )

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def stall_fraction(self) -> float:
        if self.cycles == 0:
            return 0.0
        return (self.cycles - self.issue_cycles) / self.cycles


def execute_program(
    program: TileProgram,
    load_use_fraction: float = DEFAULT_LOAD_USE_FRACTION,
    switch_words_per_iteration: float = 0.0,
) -> TileExecution:
    """Run ``program`` on the single-issue tile pipeline.

    ``switch_words_per_iteration`` models the switch processor moving
    words through the tile's single local-SRAM port each iteration;
    every such word that coincides with a load/store slot costs one
    conflict cycle (bounded by the smaller of the two demands).
    """
    if not 0.0 <= load_use_fraction <= 1.0:
        raise ConfigError(
            f"load_use_fraction must be in [0, 1], got {load_use_fraction}"
        )
    if switch_words_per_iteration < 0:
        raise ConfigError("negative switch traffic")

    totals = program.category_totals()
    instructions = program.total_instructions
    issue = instructions  # single issue, one instruction per cycle

    loads = totals.get("load", 0.0)
    load_use = loads * load_use_fraction * LOAD_USE_BUBBLE

    branches = totals.get("branch", 0.0)
    branch = branches * BRANCH_BUBBLE

    memory_slots = loads + totals.get("store", 0.0)
    switch_words = switch_words_per_iteration * program.iterations
    conflicts = min(memory_slots, switch_words)

    return TileExecution(
        instructions=instructions,
        issue_cycles=issue,
        load_use_bubbles=load_use,
        branch_bubbles=branch,
        memory_port_conflicts=conflicts,
    )


def fft_program(plan, transforms: int = 1) -> TileProgram:
    """The tile program of ``transforms`` memory-to-memory radix FFTs.

    Built from the same census the block-level Raw CSLC model uses
    (:meth:`FFTPlan.memory_census` plus the per-butterfly address/loop
    calibration defaults), arranged as one loop iteration per butterfly —
    so the executor sees the real load/compute/store interleaving that
    the flat instruction counts abstract away.
    """
    if transforms < 1:
        raise ConfigError(f"transforms must be positive, got {transforms}")
    mem = plan.memory_census()
    butterflies = sum(s.butterflies for s in plan.stages)
    body = (
        Segment("addr", 5.0),
        Segment("load", mem.loads / butterflies),
        Segment("alu", mem.flops / butterflies),
        Segment("store", mem.stores / butterflies),
        Segment("branch", 3.0),
    )
    return TileProgram(body=body, iterations=butterflies * transforms)
