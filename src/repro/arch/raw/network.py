"""Raw's on-chip networks.

The static network is the one the paper's kernels use: a 2-D mesh of
1-word/cycle links programmed by per-tile switch processors, with a
3-cycle nearest-neighbour latency plus one cycle per additional hop
(§2.3).  The block-level model needs two things from it:

* latencies for pipeline fill/drain accounting
  (:func:`transfer_latency`), and
* a *bandwidth feasibility* check: a mapping that claims to stream W
  words in C cycles across a set of routes must not oversubscribe any
  link (:meth:`StaticNetwork.check_feasible`).  §3.1's corner-turn
  algorithm "was developed ... to avoid bottlenecks in the static
  networks and data ports", and the mapping proves that property through
  this check rather than asserting it.

The dynamic network is modelled at packet granularity for completeness
(:func:`dynamic_packet_words`): data travels in packets of header plus
payload, padded to whole packets — §2.3's description.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.arch.raw.config import RawConfig

Coord = Tuple[int, int]


def route_hops(src: Coord, dst: Coord) -> int:
    """Manhattan hop count between two mesh coordinates."""
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])


def transfer_latency(config: RawConfig, src: Coord, dst: Coord) -> int:
    """Static-network latency from ``src`` to ``dst`` (§2.3: 3 cycles to a
    nearest neighbour, +1 per extra hop; 0 hops means tile-local)."""
    hops = route_hops(src, dst)
    if hops == 0:
        return 0
    return config.static_nearest_latency + (hops - 1) * config.static_hop_latency


def xy_route_links(src: Coord, dst: Coord) -> List[Tuple[Coord, Coord]]:
    """The directed links of a dimension-ordered (X then Y) route."""
    links: List[Tuple[Coord, Coord]] = []
    r, c = src
    while c != dst[1]:
        step = 1 if dst[1] > c else -1
        links.append(((r, c), (r, c + step)))
        c += step
    while r != dst[0]:
        step = 1 if dst[0] > r else -1
        links.append(((r, c), (r + step, c)))
        r += step
    return links


class StaticNetwork:
    """Link-load accounting for the static mesh network."""

    def __init__(self, config: RawConfig) -> None:
        self.config = config
        self._link_words: Dict[Tuple[Coord, Coord], float] = {}

    def _check_coord(self, coord: Coord) -> None:
        r, c = coord
        if not (0 <= r < self.config.mesh_rows and 0 <= c < self.config.mesh_cols):
            raise ConfigError(
                f"coordinate {coord} outside the "
                f"{self.config.mesh_rows}x{self.config.mesh_cols} mesh"
            )

    def add_flow(self, src: Coord, dst: Coord, words: float) -> None:
        """Account ``words`` routed from ``src`` to ``dst`` (XY routing)."""
        if words < 0:
            raise ConfigError("negative flow")
        self._check_coord(src)
        self._check_coord(dst)
        for link in xy_route_links(src, dst):
            self._link_words[link] = self._link_words.get(link, 0.0) + words

    @property
    def max_link_words(self) -> float:
        """Words on the most-loaded link."""
        if not self._link_words:
            return 0.0
        return max(self._link_words.values())

    def min_cycles(self) -> float:
        """Lower bound on cycles to drain all accounted flows."""
        return self.max_link_words / self.config.static_link_words_per_cycle

    def check_feasible(self, cycles: float) -> bool:
        """Whether the accounted flows fit in ``cycles`` without any link
        exceeding its 1 word/cycle bandwidth."""
        return self.min_cycles() <= cycles

    def reset(self) -> None:
        self._link_words.clear()


def dynamic_packet_words(config: RawConfig, payload_words: int) -> int:
    """Words on the wire for a dynamic-network message.

    §2.3: "data is sent to another tile in a packet.  A packet contains
    header and data.  If the data is smaller than a packet, dummy data is
    added"; we model a fixed header plus the payload rounded up to one
    word minimum.
    """
    if payload_words < 0:
        raise ConfigError("negative payload")
    return config.dynamic_packet_header_words + max(1, payload_words)


def port_coords(config: RawConfig) -> List[Coord]:
    """Tile coordinates adjacent to each peripheral DRAM port.

    §2.3: "the memory ports are located at the 16 peripheral ports of the
    chip" — one port per mesh-edge link: ``mesh_cols`` ports on each of
    the top and bottom edges and ``mesh_rows`` on the left and right (16
    on the 4x4 prototype).  The returned list has one entry per *port*
    (the tile it attaches to), so corner tiles appear twice.
    """
    top = [(0, c) for c in range(config.mesh_cols)]
    bottom = [(config.mesh_rows - 1, c) for c in range(config.mesh_cols)]
    left = [(r, 0) for r in range(config.mesh_rows)]
    right = [(r, config.mesh_cols - 1) for r in range(config.mesh_rows)]
    return top + bottom + left + right
