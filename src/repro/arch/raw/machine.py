"""The Raw machine model: 16 single-issue tiles, local SRAM, ports, mesh.

Costing methods the mappings compose:

* :meth:`RawMachine.tile_cycles` — a tile executes one instruction per
  cycle (single-issue MIPS pipeline); mappings supply per-tile
  instruction-category counts.
* :meth:`RawMachine.cache_stall_cycles` — exposed local-memory miss time
  when a working set streams through the tile caches (§4.3: "less than
  10% of the execution time is spent on memory stalls").
* :meth:`RawMachine.distribute` — block/set distribution over tiles with
  the real imbalance (§4.3's 73 sets on 16 tiles: five sets on nine
  tiles, four on seven).
* :meth:`RawMachine.offchip_time` — aggregate peripheral-port bound for a
  word volume; the corner-turn mapping uses it to *prove* §4.2's claim
  that "the static network and DRAM ports are not a bottleneck".

Capacity: each tile's data SRAM is a :class:`Scratchpad`; mappings
allocate their blocks/working sets and get a hard error if the paper's
sizing assumptions are violated.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.arch.base import MachineSpec
from repro.arch.raw.config import RawConfig
from repro.arch.raw.network import StaticNetwork
from repro.calibration import DEFAULT_CALIBRATION, RawCalibration
from repro.errors import ConfigError
from repro.memory.sram import Scratchpad
from repro.trace.tracer import active_tracer

#: Table 2 row: 300 MHz, 16 ALUs, 4.64 peak GFLOPS (the paper's published
#: figure; slightly below 16 tiles x 300 MHz because of implementation
#: details of the prototype).
RAW_SPEC = MachineSpec(
    name="raw",
    display_name="Raw",
    clock_hz=300e6,
    n_alus=16,
    peak_gflops=4.64,
    flops_per_cycle=16.0,
)


class RawMachine:
    """Stateful Raw resources plus costing methods (see module doc)."""

    spec = RAW_SPEC

    def __init__(
        self,
        config: Optional[RawConfig] = None,
        calibration: Optional[RawCalibration] = None,
    ) -> None:
        self.config = config or RawConfig()
        self.cal = calibration or DEFAULT_CALIBRATION.raw
        self.tile_memories: Tuple[Scratchpad, ...] = tuple(
            Scratchpad(f"raw-tile{i}-data", self.config.tile_data_bytes)
            for i in range(self.config.tiles)
        )
        self.static_network = StaticNetwork(self.config)

    def reset(self) -> None:
        for mem in self.tile_memories:
            mem.reset()
        self.static_network.reset()

    # ------------------------------------------------------------------
    # Tile execution
    # ------------------------------------------------------------------

    def tile_cycles(self, instructions: float) -> float:
        """Issue cycles for ``instructions`` on one single-issue tile."""
        if instructions < 0:
            raise ConfigError("negative instruction count")
        tracer = active_tracer()
        if tracer is not None and instructions > 0:
            tracer.span(
                "tile execute",
                "raw/tiles",
                instructions,
                args={"instructions": instructions},
            )
        return instructions

    def cache_stall_cycles(self, busy_cycles: float) -> float:
        """Exposed local-memory stall time accompanying ``busy_cycles`` of
        execution, sized so stalls are the calibrated fraction of *total*
        time (busy + stalls)."""
        if busy_cycles < 0:
            raise ConfigError("negative busy cycles")
        f = self.cal.cache_stall_fraction
        stall = busy_cycles * f / (1.0 - f)
        tracer = active_tracer()
        if tracer is not None and stall > 0:
            tracer.span(
                "cache stall",
                "raw/tiles",
                stall,
                args={"busy_cycles": busy_cycles},
            )
        return stall

    # ------------------------------------------------------------------
    # Work distribution
    # ------------------------------------------------------------------

    def distribute(self, n_items: int) -> List[int]:
        """Items per tile under static block distribution.

        73 CSLC sub-band sets over 16 tiles gives nine tiles five sets and
        seven tiles four — the §4.3 load imbalance ("about 8% of CPU
        cycles are idle").
        """
        if n_items < 0:
            raise ConfigError("negative item count")
        tiles = self.config.tiles
        base = n_items // tiles
        extra = n_items % tiles
        return [base + 1 if t < extra else base for t in range(tiles)]

    def imbalance_makespan(self, per_item_cycles: float, n_items: int) -> float:
        """Makespan with the real distribution: the most-loaded tile."""
        loads = self.distribute(n_items)
        tracer = active_tracer()
        if tracer is not None and per_item_cycles > 0:
            # One span per tile shows the §4.3 load imbalance directly:
            # the short tiles' idle tails are the ~8% wasted cycles.
            for t, items in enumerate(loads):
                if items:
                    tracer.span(
                        "items",
                        f"raw/tile{t:02d}",
                        items * per_item_cycles,
                        args={"items": items},
                    )
        return max(loads) * per_item_cycles

    def balanced_makespan(self, per_item_cycles: float, n_items: int) -> float:
        """The §4.3 perfect-load-balance extrapolation (continuous
        arrival of sets in a real system)."""
        if n_items < 0:
            raise ConfigError("negative item count")
        return n_items * per_item_cycles / self.config.tiles

    # ------------------------------------------------------------------
    # Memory and network bounds
    # ------------------------------------------------------------------

    def offchip_time(self, words: float) -> float:
        """Cycles to move ``words`` through the peripheral DRAM ports at
        the aggregate Table 1 rate."""
        if words < 0:
            raise ConfigError("negative word count")
        cycles = words / self.config.offchip_words_per_cycle
        tracer = active_tracer()
        if tracer is not None and cycles > 0:
            tracer.span(
                "offchip transfer",
                "raw/ports",
                cycles,
                args={"words": words},
            )
        return cycles

    def onchip_issue_time(self, load_store_words: float) -> float:
        """Cycles to issue ``load_store_words`` local accesses across all
        tiles (one load or store per tile per cycle — the §4.2 corner-turn
        limit)."""
        if load_store_words < 0:
            raise ConfigError("negative word count")
        cycles = load_store_words / self.config.onchip_words_per_cycle
        tracer = active_tracer()
        if tracer is not None and cycles > 0:
            tracer.span(
                "onchip issue",
                "raw/ports",
                cycles,
                args={"words": load_store_words},
            )
        return cycles

    def tile_block_capacity_words(self) -> int:
        """Words of one tile's data SRAM (the 64x64 corner-turn block must
        fit: 64 x 64 x 4 B = 16 KB)."""
        return self.config.tile_data_bytes // 4

    def __repr__(self) -> str:
        return (
            f"RawMachine({self.config.mesh_rows}x{self.config.mesh_cols} "
            f"tiles, clock={self.config.clock_hz / 1e6:.0f} MHz)"
        )
