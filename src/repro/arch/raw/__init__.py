"""Raw: the MIT tiled-processor prototype (§2.3).

"The current Raw implementation contains 16 tiles on a chip connected by a
very low latency 2-D mesh network. ... Each tile has a MIPS-based RISC
processor with floating-point units and a total of 128 KB of SRAM. ...
The switch processor ... provides throughput to the tile processor of one
word per cycle with a latency of three cycles between nearest neighbor
tiles.  One additional cycle of latency is added for each hop. ... The
memory ports are located at the 16 peripheral ports of the chip."
"""

from repro.arch.raw.config import RawConfig
from repro.arch.raw.machine import RAW_SPEC, RawMachine
from repro.arch.raw.network import StaticNetwork, route_hops

__all__ = ["RAW_SPEC", "RawConfig", "RawMachine", "StaticNetwork", "route_hops"]
