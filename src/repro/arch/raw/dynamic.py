"""Raw's dynamic network, at packet granularity.

§2.3: "When the dynamic network is used, data is sent to another tile in
a packet.  A packet contains header and data.  If the data is smaller
than a packet, dummy data is added ...  All tiles can access memory
either through the dynamic network or through the static network."  The
MIMD-mode CSLC routes its sub-band data "to local memories through
cache misses" (§2.4) — i.e., miss traffic travels the dynamic network
from the peripheral DRAM ports to the tiles.

This module simulates that traffic with the discrete-event engine:
packets are injected at port tiles, traverse XY routes hop by hop at one
word per cycle per link with per-link queueing, and are delivered after
their full payload drains.  The Raw CSLC's "<10% memory stalls" claim
(§4.3) requires the delivery of each working set to fit comfortably
inside the computation time; :func:`deliver` measures that delivery time
so the tests can check it against the mapping's stall budget instead of
trusting the calibration blindly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.raw.config import RawConfig
from repro.arch.raw.network import Coord, dynamic_packet_words, xy_route_links
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.resources import TimelineResource

#: Maximum payload words per dynamic-network packet (the prototype's
#: packets are short; larger transfers are segmented).
MAX_PAYLOAD_WORDS = 31


@dataclass(frozen=True)
class Message:
    """One logical transfer: ``words`` of payload from ``src`` to ``dst``."""

    src: Coord
    dst: Coord
    words: int
    inject_time: float = 0.0

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ConfigError(f"message needs positive payload, got {self.words}")
        if self.inject_time < 0:
            raise ConfigError("negative injection time")


@dataclass(frozen=True)
class Delivery:
    """Completion record for one message."""

    message: Message
    packets: int
    wire_words: int
    complete_time: float


@dataclass(frozen=True)
class TrafficResult:
    """Outcome of delivering a message set."""

    deliveries: Tuple[Delivery, ...]
    makespan: float
    busiest_link_words: float

    @property
    def total_wire_words(self) -> int:
        return sum(d.wire_words for d in self.deliveries)


def segment(message: Message, config: RawConfig) -> List[int]:
    """Split a message into per-packet wire sizes (header + payload,
    §2.3's padding applied to the final short packet)."""
    sizes = []
    remaining = message.words
    while remaining > 0:
        payload = min(remaining, MAX_PAYLOAD_WORDS)
        sizes.append(dynamic_packet_words(config, payload))
        remaining -= payload
    return sizes


def deliver(
    messages: Sequence[Message],
    config: Optional[RawConfig] = None,
) -> TrafficResult:
    """Event-simulate ``messages`` across the dynamic network.

    Each packet acquires its route's links in order (one word per cycle
    per link, wormhole-style: the packet occupies each link for its full
    wire length, pipelined one hop behind the previous link), queueing
    behind earlier traffic on shared links.  Tile-local messages deliver
    immediately.
    """
    config = config or RawConfig()
    engine = Engine()
    links: Dict[Tuple[Coord, Coord], TimelineResource] = {}
    deliveries: List[Delivery] = []

    def link(edge: Tuple[Coord, Coord]) -> TimelineResource:
        if edge not in links:
            links[edge] = TimelineResource(f"{edge[0]}->{edge[1]}")
        return links[edge]

    def send(message: Message) -> None:
        route = xy_route_links(message.src, message.dst)
        packet_sizes = segment(message, config)
        wire = sum(packet_sizes)
        if not route:
            deliveries.append(
                Delivery(message, len(packet_sizes), wire, message.inject_time)
            )
            return
        time = message.inject_time
        last_end = time
        for size in packet_sizes:
            hop_ready = time
            for edge in route:
                grant = link(edge).acquire(hop_ready, float(size))
                # The head advances one cycle after reaching each hop.
                hop_ready = grant.start + config.static_hop_latency
                last_end = grant.end
            time = last_end  # next packet follows the previous one
        deliveries.append(
            Delivery(message, len(packet_sizes), wire, last_end)
        )

    # Injection through the event engine keeps arrival ordering by time.
    for message in sorted(messages, key=lambda m: m.inject_time):
        engine.schedule(message.inject_time, lambda m=message: send(m))
    engine.run()

    makespan = max((d.complete_time for d in deliveries), default=0.0)
    busiest = max((l.busy_cycles for l in links.values()), default=0.0)
    return TrafficResult(
        deliveries=tuple(deliveries),
        makespan=makespan,
        busiest_link_words=busiest,
    )


def cslc_set_delivery(
    config: Optional[RawConfig] = None,
    words_per_set: int = 6 * 256,
) -> TrafficResult:
    """Deliver one CSLC working-set round: every tile fetches its
    sub-band data (inputs plus output write-back) from its nearest
    peripheral port — the §2.4 MIMD-mode cache-miss traffic."""
    from repro.arch.raw.network import port_coords, route_hops

    config = config or RawConfig()
    ports = port_coords(config)
    messages = []
    for r in range(config.mesh_rows):
        for c in range(config.mesh_cols):
            tile = (r, c)
            nearest = min(ports, key=lambda p: route_hops(p, tile))
            if nearest == tile:
                # Local port: model as a single-hop neighbour transfer.
                neighbours = [p for p in ports if route_hops(p, tile) == 1]
                nearest = neighbours[0] if neighbours else nearest
            messages.append(Message(src=nearest, dst=tile, words=words_per_set))
    return deliver(messages, config)
