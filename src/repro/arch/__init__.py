"""Machine models for the paper's four platforms.

* :mod:`repro.arch.viram` — VIRAM, the Berkeley processor-in-memory vector
  chip (§2.1).
* :mod:`repro.arch.imagine` — Imagine, the Stanford stream processor
  (§2.2).
* :mod:`repro.arch.raw` — Raw, the MIT tiled processor (§2.3).
* :mod:`repro.arch.ppc` — the PowerPC G4 / AltiVec measurement baseline
  (§4.1, §4.5).

Each machine package exposes a ``*Config`` (microarchitectural parameters
with the paper's published values as defaults), a ``*Machine`` (stateful
resources plus costing methods mappings compose), and registers itself
with :func:`repro.arch.base.machine_specs`.
"""

from repro.arch.base import KernelRun, MachineSpec

__all__ = ["KernelRun", "MachineSpec"]
