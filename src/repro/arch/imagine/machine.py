"""The Imagine machine model: SRF, stream controllers, cluster array.

Costing methods the mappings compose:

* :meth:`ImagineMachine.stream_cycles` — controller-cycles to move one
  word pattern between DRAM and the SRF: one word per cycle per
  controller, plus exposed row-switch time from the (serialized-policy)
  DRAM model, plus an optional gather derating for indexed streams
  (§4.4's table reads).
* :meth:`ImagineMachine.memory_time` — wall-clock cycles for a bag of
  controller-cycles spread over the two controllers.
* :meth:`ImagineMachine.kernel_cycles` — cluster compute time for an
  op mix under the resource-bound VLIW model, SIMD across 8 clusters.
* :meth:`ImagineMachine.kernel_startups` — software-pipeline prologue
  cost per kernel invocation (short streams pipeline poorly, §4.3/§4.4).

SRF capacity is enforced with a :class:`Scratchpad`: the corner-turn
matrix *must not* fit (that is why the paper strips it), and the mappings
assert their strip/batch working sets do fit.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.base import MachineSpec
from repro.arch.imagine.cluster import ClusterOpMix, cluster_schedule_cycles
from repro.arch.imagine.config import ImagineConfig
from repro.calibration import DEFAULT_CALIBRATION, ImagineCalibration
from repro.errors import ConfigError
from repro.memory.dram import DRAM, DRAMConfig, DRAMCost
from repro.memory.sram import Scratchpad
from repro.memory.streams import AccessPattern
from repro.trace.tracer import active_tracer

#: Table 2 row: 300 MHz, 48 ALUs, 14.4 peak GFLOPS.
IMAGINE_SPEC = MachineSpec(
    name="imagine",
    display_name="Imagine",
    clock_hz=300e6,
    n_alus=48,
    peak_gflops=14.4,
    flops_per_cycle=48.0,
)


class ImagineMachine:
    """Stateful Imagine resources plus costing methods (see module doc)."""

    spec = IMAGINE_SPEC

    def __init__(
        self,
        config: Optional[ImagineConfig] = None,
        calibration: Optional[ImagineCalibration] = None,
    ) -> None:
        self.config = config or ImagineConfig()
        self.cal = calibration or DEFAULT_CALIBRATION.imagine
        self.srf = Scratchpad("imagine-srf", self.config.srf_bytes)
        self.dram = DRAM(
            DRAMConfig(
                name="imagine-offchip",
                banks=self.config.dram_banks,
                row_words=self.config.dram_row_words,
                row_cycle=self.cal.dram_row_cycle,
                access_latency=0.0,  # hidden by stream reordering (§2.2)
                activation_policy="serialized",
            )
        )

    def reset(self) -> None:
        self.srf.reset()
        self.dram.reset()

    # ------------------------------------------------------------------
    # Memory streams
    # ------------------------------------------------------------------

    def stream_cycles(
        self,
        pattern: AccessPattern,
        *,
        kind: str,
        gather: bool = False,
    ) -> float:
        """Controller-cycles to stream ``pattern`` between DRAM and SRF.

        Sequential/strided record streams cost one controller-cycle per
        word plus exposed row switches; indexed gathers additionally pay
        the calibrated derating (§4.4: the calibration-table reads make
        loads/stores 89% of beam-steering time).
        """
        cost = self.stream_cost(pattern, kind=kind)
        if gather:
            return self.gather_cycles(pattern)
        return cost.stream_cycles

    def stream_cost(self, pattern: AccessPattern, *, kind: str) -> DRAMCost:
        """The DRAM cost behind :meth:`stream_cycles` (advances the
        open-row state, so calls must stay in program order)."""
        return self.dram.access(
            pattern,
            rate_words_per_cycle=self.config.controller_words_per_cycle,
            kind=kind,
        )

    def gather_cycles(self, pattern: AccessPattern) -> float:
        """Controller-cycles for an indexed gather of ``pattern``: the
        calibrated derating replaces the streaming rate entirely."""
        cycles = (
            pattern.n_words
            * self.cal.gather_derate
            / self.config.controller_words_per_cycle
        )
        tracer = active_tracer()
        if tracer is not None:
            tracer.instant(
                "gather",
                "imagine/memctl",
                args={"words": pattern.n_words, "cycles": cycles},
            )
            tracer.count("imagine.gathers")
        return cycles

    def memory_time(self, controller_cycles: float) -> float:
        """Wall-clock cycles for ``controller_cycles`` of stream work
        spread over the memory controllers.

        The controllers process independent streams concurrently; the
        mappings' stream sets are long and balanced, so the even-split
        bound is tight.
        """
        if controller_cycles < 0:
            raise ConfigError("negative controller cycles")
        cycles = controller_cycles / self.config.memory_controllers
        tracer = active_tracer()
        if tracer is not None and cycles > 0:
            tracer.span(
                "stream transfers",
                "imagine/memctl",
                cycles,
                args={"controller_cycles": controller_cycles},
            )
        return cycles

    def network_port_time(self, words: float) -> float:
        """Wall-clock cycles to move ``words`` through the network port
        (two words/cycle; §4.2's corner-turn ablation)."""
        if words < 0:
            raise ConfigError("negative word count")
        return words / self.config.network_port_words_per_cycle

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------

    def kernel_cycles(self, mix_per_cluster: ClusterOpMix) -> float:
        """Inner-loop compute cycles for one kernel body, SIMD across the
        cluster array.

        Arithmetic is resource-bound VLIW-scheduled; inter-cluster
        communication words are charged separately at the calibrated
        exposure because the butterfly dataflow serialises on remote
        operands even though the comm unit is a parallel resource (§4.3's
        ~30% parallel-FFT penalty).
        """
        arithmetic = ClusterOpMix(
            adds=mix_per_cluster.adds,
            muls=mix_per_cluster.muls,
            divs=mix_per_cluster.divs,
        )
        cycles = cluster_schedule_cycles(
            arithmetic,
            self.config,
            inefficiency=self.cal.cluster_schedule_inefficiency,
        )
        total = cycles + mix_per_cluster.comms * self.cal.comm_exposure
        tracer = active_tracer()
        if tracer is not None and total > 0:
            tracer.span(
                "kernel body",
                "imagine/clusters",
                total,
                args={
                    "arithmetic": cycles,
                    "comms": mix_per_cluster.comms,
                },
            )
        return total

    def kernel_startups(self, invocations: int) -> float:
        """Software-pipeline prologue cost for ``invocations`` kernel
        launches."""
        if invocations < 0:
            raise ConfigError("negative invocation count")
        cycles = invocations * self.cal.kernel_startup
        tracer = active_tracer()
        if tracer is not None and cycles > 0:
            tracer.span(
                "kernel startups",
                "imagine/microcontroller",
                cycles,
                args={"invocations": invocations},
            )
        return cycles

    def spread_over_clusters(self, element_ops: float) -> float:
        """Element ops per cluster under round-robin SIMD distribution."""
        if element_ops < 0:
            raise ConfigError("negative element op count")
        return element_ops / self.config.clusters

    def __repr__(self) -> str:
        return f"ImagineMachine(clock={self.config.clock_hz / 1e6:.0f} MHz)"
