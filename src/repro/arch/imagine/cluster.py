"""Per-cluster VLIW kernel scheduling model.

Imagine kernels are VLIW microcode executed in SIMD lockstep by the eight
clusters; each cluster issues to three adders, two multipliers, one
divider, and one inter-cluster communication unit per cycle.  For the
block-level model a kernel's inner-loop cost is its *resource-bound*
schedule length — the busiest functional-unit class — inflated by a small
packing-inefficiency factor (perfect VLIW packing of a tiny 128-point FFT
loop body is not achievable; §4.3 reports 25-30% FFT ALU utilization once
startup and communication are included).

:func:`list_schedule_cycles` provides a genuine dependency-aware list
scheduler for callers that have an explicit operation DAG; the resource
bound is validated against it in the tests (the list schedule can never
beat the bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError, ScheduleError
from repro.arch.imagine.config import ImagineConfig

#: Functional-unit classes inside one cluster.
FU_CLASSES = ("add", "mul", "div", "comm")


@dataclass(frozen=True)
class ClusterOpMix:
    """Element operations per cluster for one kernel body.

    ``adds`` include subtracts and logical/shift ops (the adders execute
    them); ``comms`` are inter-cluster word transfers through the single
    communication unit (§4.3: CSLC "performance is reduced by 30% because
    inter-cluster communication is used to perform parallel FFTs").
    """

    adds: float = 0.0
    muls: float = 0.0
    divs: float = 0.0
    comms: float = 0.0

    def __post_init__(self) -> None:
        for name in ("adds", "muls", "divs", "comms"):
            if getattr(self, name) < 0:
                raise ConfigError(f"negative {name} in cluster op mix")

    def __add__(self, other: "ClusterOpMix") -> "ClusterOpMix":
        if not isinstance(other, ClusterOpMix):
            return NotImplemented
        return ClusterOpMix(
            adds=self.adds + other.adds,
            muls=self.muls + other.muls,
            divs=self.divs + other.divs,
            comms=self.comms + other.comms,
        )

    def scaled(self, factor: float) -> "ClusterOpMix":
        if factor < 0:
            raise ConfigError(f"negative scale factor {factor}")
        return ClusterOpMix(
            adds=self.adds * factor,
            muls=self.muls * factor,
            divs=self.divs * factor,
            comms=self.comms * factor,
        )

    @property
    def total(self) -> float:
        return self.adds + self.muls + self.divs + self.comms


def cluster_schedule_cycles(
    mix: ClusterOpMix,
    config: ImagineConfig,
    inefficiency: float = 1.0,
) -> float:
    """Resource-bound VLIW schedule length for one cluster's op mix.

    The bound is the busiest FU class; ``inefficiency`` (>= 1) models
    imperfect packing of short loop bodies.
    """
    if inefficiency < 1.0:
        raise ConfigError(
            f"inefficiency must be >= 1, got {inefficiency}"
        )
    bound = max(
        mix.adds / config.adders_per_cluster,
        mix.muls / config.multipliers_per_cluster,
        mix.divs / config.dividers_per_cluster,
        mix.comms / config.comm_units_per_cluster,
    )
    return bound * inefficiency


@dataclass(frozen=True)
class MicroOp:
    """One operation of an explicit kernel DAG.

    ``fu`` is a functional-unit class from :data:`FU_CLASSES`; ``deps``
    are indices of earlier ops whose results this op consumes; ``latency``
    is result latency in cycles (issue occupies the FU for one cycle).
    """

    fu: str
    deps: Tuple[int, ...] = ()
    latency: int = 1


def list_schedule_cycles(
    ops: Sequence[MicroOp], config: ImagineConfig
) -> int:
    """Cycle count of a greedy list schedule of ``ops`` on one cluster.

    Ready ops are issued oldest-first each cycle, up to the per-class FU
    counts.  Used to validate the resource-bound model and for the
    scheduling microbenchmark; the returned length is always >= the
    resource bound and >= the critical path.
    """
    counts = {
        "add": config.adders_per_cluster,
        "mul": config.multipliers_per_cluster,
        "div": config.dividers_per_cluster,
        "comm": config.comm_units_per_cluster,
    }
    n = len(ops)
    for i, op in enumerate(ops):
        if op.fu not in counts:
            raise ScheduleError(f"op {i}: unknown FU class {op.fu!r}")
        if op.latency < 1:
            raise ScheduleError(f"op {i}: latency must be >= 1")
        for d in op.deps:
            if not 0 <= d < i:
                raise ScheduleError(
                    f"op {i}: dependency {d} is not an earlier op"
                )
    if n == 0:
        return 0

    finish: List[int] = [-1] * n  # cycle in which op's result is ready
    issued = [False] * n
    cycle = 0
    remaining = n
    while remaining:
        free: Dict[str, int] = dict(counts)
        for i, op in enumerate(ops):
            if issued[i] or free[op.fu] == 0:
                continue
            if all(finish[d] >= 0 and finish[d] <= cycle for d in op.deps):
                issued[i] = True
                finish[i] = cycle + op.latency
                free[op.fu] -= 1
                remaining -= 1
        cycle += 1
        if cycle > n * max(op.latency for op in ops) + n:
            raise ScheduleError("list schedule failed to make progress")
    return max(finish)
