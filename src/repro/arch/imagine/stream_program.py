"""Stream-program representation and execution for Imagine.

§2.4: "the programming model is based on streams ... a program is
described in two languages, one for the host (or control) thread ... and
one for the stream processing unit".  The host-level program is a
sequence of *stream operations* — memory loads/stores between DRAM and
the SRF, and kernel invocations on the cluster array — issued in order
by the stream controller, with double buffering emerging from the
dependency structure rather than being assumed.

:class:`StreamProgram` captures that host program; :func:`execute`
schedules it with the in-order earliest-start scheduler over the
machine's two memory controllers (least-loaded assignment per stream)
and the single cluster array.  The Imagine kernel mappings build their
host programs explicitly, so memory/compute overlap — §4.2's "87% of the
cycles ... are due to memory transfers" and §4.3's fully-hidden CSLC
streams — is an *outcome* of the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.imagine.machine import ImagineMachine
from repro.errors import ScheduleError
from repro.memory.dram import DRAMCost
from repro.memory.streams import AccessPattern
from repro.sim.resources import TimelineResource
from repro.sim.schedule import DependencyScheduler, Task


@dataclass(frozen=True)
class StreamOp:
    """One host-program operation.

    ``kind`` is ``"load"``/``"store"`` (with ``pattern`` set and
    optionally ``gather``) or ``"kernel"`` (with ``cycles`` set —
    inner-loop time including the software-pipeline prologue).
    ``deps`` name earlier ops whose completion this op requires (data in
    the SRF, buffers freed).
    """

    name: str
    kind: str
    pattern: Optional[AccessPattern] = None
    gather: bool = False
    cycles: float = 0.0
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("load", "store", "kernel"):
            raise ScheduleError(
                f"op {self.name!r}: kind must be load/store/kernel"
            )
        if self.kind == "kernel":
            if self.pattern is not None:
                raise ScheduleError(
                    f"kernel op {self.name!r} must not carry a pattern"
                )
            if self.cycles < 0:
                raise ScheduleError(
                    f"kernel op {self.name!r}: negative cycles"
                )
        elif self.pattern is None:
            raise ScheduleError(
                f"memory op {self.name!r} needs an access pattern"
            )


@dataclass
class StreamSchedule:
    """Outcome of executing a stream program."""

    makespan: float
    memory_busy: float
    cluster_busy: float
    op_intervals: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def memory_wall(self) -> float:
        """Total memory-system busy time (the §4.2 memory bound)."""
        return self.memory_busy

    @property
    def exposed_over_memory(self) -> float:
        """Cycles the schedule runs past the memory wall — the
        unoverlapped kernel time of §4.2's 13%."""
        return max(0.0, self.makespan - self.memory_wall)


class StreamProgram:
    """An ordered host program of :class:`StreamOp`."""

    def __init__(self) -> None:
        self._ops: List[StreamOp] = []
        self._names: set = set()

    def add(self, op: StreamOp) -> None:
        if op.name in self._names:
            raise ScheduleError(f"duplicate stream op {op.name!r}")
        for dep in op.deps:
            if dep not in self._names:
                raise ScheduleError(
                    f"op {op.name!r} depends on unknown op {dep!r} "
                    "(host program is issued in order)"
                )
        self._ops.append(op)
        self._names.add(op.name)

    def load(
        self,
        name: str,
        pattern: AccessPattern,
        deps: Sequence[str] = (),
        gather: bool = False,
    ) -> None:
        self.add(StreamOp(name, "load", pattern=pattern, gather=gather,
                          deps=tuple(deps)))

    def store(
        self, name: str, pattern: AccessPattern, deps: Sequence[str] = ()
    ) -> None:
        self.add(StreamOp(name, "store", pattern=pattern, deps=tuple(deps)))

    def kernel(
        self, name: str, cycles: float, deps: Sequence[str] = ()
    ) -> None:
        self.add(StreamOp(name, "kernel", cycles=cycles, deps=tuple(deps)))

    @property
    def ops(self) -> Tuple[StreamOp, ...]:
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)


@dataclass(frozen=True)
class OpCost:
    """Structural cost coefficients of one stream op.

    :func:`execute_measured` records these while it runs the DRAM model
    in program order; :func:`reschedule` turns them back into task
    durations under a *different* calibration without touching DRAM
    state.  ``issue_cycles`` (data transfer at the controller rate) and
    ``activations`` (row switches, a pure function of the address stream
    and bank geometry) are calibration-independent; the row-cycle time,
    gather derate, and kernel durations re-enter at replay.
    """

    name: str
    kind: str
    deps: Tuple[str, ...]
    issue_cycles: float = 0.0
    activations: int = 0
    n_words: int = 0
    gather: bool = False
    cycles: float = 0.0  # kernel duration under the measuring calibration


def execute_measured(
    program: StreamProgram, machine: ImagineMachine
) -> Tuple[StreamSchedule, Tuple[OpCost, ...]]:
    """Schedule ``program`` on ``machine`` and record per-op cost
    coefficients for later replay.

    Each memory stream stripes across the machine's controllers (the
    memory controllers "reorder accesses ... to increase data access
    locality", §2.2, and interleave banks between them), so the memory
    system appears as one resource moving ``memory_controllers`` words
    per cycle; kernels serialise on the single SIMD cluster array.
    Issue is in program order, so a later op can never displace an
    earlier one.
    """
    memory = TimelineResource("memory-system")
    clusters = TimelineResource("cluster-array")
    scheduler = DependencyScheduler()
    costs: List[OpCost] = []

    # Cost every memory stream in one DRAM pass: the ops' address
    # streams, concatenated in program order, are one ``access_run``
    # whose open-row state threads through exactly as per-op ``access``
    # calls would (that equivalence is the access_run contract, held to
    # by the DRAM oracle).  A corner-turn program issues hundreds of
    # short streams; one vectorised pass replaces per-op bank walks.
    memory_ops = [op for op in program.ops if op.kind != "kernel"]
    op_cost_index: Dict[str, DRAMCost] = {}
    if memory_ops:
        address_runs = [op.pattern.addresses() for op in memory_ops]
        seg_lengths = np.asarray(
            [a.size for a in address_runs], dtype=np.int64
        )
        rate = machine.config.controller_words_per_cycle
        batch = machine.dram.access_run(
            np.concatenate(address_runs) if address_runs else [],
            seg_lengths,
            np.full(len(memory_ops), rate, dtype=np.float64),
        )
        for i, op in enumerate(memory_ops):
            op_cost_index[op.name] = batch.segment(i)

    for op in program.ops:
        if op.kind == "kernel":
            resource = clusters
            duration = op.cycles
            costs.append(
                OpCost(name=op.name, kind=op.kind, deps=op.deps,
                       cycles=op.cycles)
            )
        else:
            resource = memory
            cost = op_cost_index[op.name]
            controller_cycles = (
                machine.gather_cycles(op.pattern)
                if op.gather
                else cost.stream_cycles
            )
            duration = machine.memory_time(controller_cycles)
            costs.append(
                OpCost(
                    name=op.name,
                    kind=op.kind,
                    deps=op.deps,
                    issue_cycles=cost.issue_cycles,
                    activations=cost.activations,
                    n_words=op.pattern.n_words,
                    gather=op.gather,
                )
            )
        scheduler.add(Task(op.name, resource, duration, deps=op.deps))

    intervals = {
        t.name: (t.start, t.end) for t in scheduler.tasks
    }
    schedule = StreamSchedule(
        makespan=scheduler.makespan,
        memory_busy=memory.busy_cycles,
        cluster_busy=clusters.busy_cycles,
        op_intervals=intervals,
    )
    return schedule, tuple(costs)


def execute(program: StreamProgram, machine: ImagineMachine) -> StreamSchedule:
    """Schedule ``program`` on ``machine``; returns the timeline summary
    (see :func:`execute_measured` for the resource model)."""
    schedule, _ = execute_measured(program, machine)
    return schedule


def reschedule(
    costs: Sequence[OpCost],
    machine: ImagineMachine,
    *,
    row_cycle: float,
    gather_derate: float,
    kernel_cycles: Dict[str, float],
) -> StreamSchedule:
    """Replay a measured program under different calibration constants.

    Rebuilds every task duration from the structural coefficients —
    ``issue + activations * row_cycle`` for record streams, the derated
    word rate for gathers, the caller-supplied per-op durations for
    kernels — and re-runs the identical dependency schedule.  With the
    measuring calibration's constants this reproduces
    :func:`execute_measured`'s timeline bit for bit; no DRAM state is
    touched and no trace spans are emitted, so a batch sweep can replay
    one structure pass across many calibration cells.
    """
    memory = TimelineResource("memory-system")
    clusters = TimelineResource("cluster-array")
    scheduler = DependencyScheduler()

    for op in costs:
        if op.kind == "kernel":
            resource = clusters
            duration = kernel_cycles[op.name]
        else:
            resource = memory
            if op.gather:
                controller_cycles = (
                    op.n_words
                    * gather_derate
                    / machine.config.controller_words_per_cycle
                )
            else:
                controller_cycles = (
                    op.issue_cycles + op.activations * row_cycle
                )
            duration = controller_cycles / machine.config.memory_controllers
        scheduler.add(Task(op.name, resource, duration, deps=op.deps))

    intervals = {
        t.name: (t.start, t.end) for t in scheduler.tasks
    }
    return StreamSchedule(
        makespan=scheduler.makespan,
        memory_busy=memory.busy_cycles,
        cluster_busy=clusters.busy_cycles,
        op_intervals=intervals,
    )
