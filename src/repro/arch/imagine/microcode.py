"""Explicit FFT kernel microcode for one Imagine cluster.

The block-level machine model costs a kernel body with a resource-bound
VLIW estimate plus a calibrated packing-inefficiency factor
(:func:`repro.arch.imagine.cluster.cluster_schedule_cycles`).  This
module *validates* that model: it builds the genuine dataflow DAG of one
cluster's share of a cluster-parallel FFT — twiddle multiplies, butterfly
adds, and inter-cluster receives, with real producer/consumer
dependencies — and list-schedules it on the cluster's 3 adders /
2 multipliers / 1 divider / 1 comm unit.

The emergent ratio of the list schedule to the resource bound is the
packing inefficiency the calibration constant stands in for; the tests
and the scheduling ablation benchmark check it stays in the calibrated
band.

Data layout: natural-order elements block-distributed 16 per cluster
(``n // clusters``); a stage whose butterfly span reaches across a
partition imports its remote operands through the communication unit
(§4.3: "inter-cluster communication is used to perform parallel FFTs").
Butterflies are owned by the cluster holding their first element, which
concentrates early-stage work on the low-numbered clusters; validation
therefore uses cluster 0 — the busiest — which makes the measured
packing inefficiency a conservative (upper) estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.imagine.cluster import (
    ClusterOpMix,
    MicroOp,
    cluster_schedule_cycles,
    list_schedule_cycles,
)
from repro.arch.imagine.config import ImagineConfig
from repro.errors import ConfigError
from repro.kernels.fft import FFTPlan

#: Result latencies (cycles) for the DAG's operation classes.
ADD_LATENCY = 1
MUL_LATENCY = 2
COMM_LATENCY = 2


@dataclass(frozen=True)
class ClusterKernelDag:
    """One cluster's share of a transform, as an explicit operation DAG."""

    ops: Tuple[MicroOp, ...]
    mix: ClusterOpMix

    @property
    def n_ops(self) -> int:
        return len(self.ops)


def _nontrivial_twiddle(size: int, j: int, k: int) -> bool:
    t = (j * k) % size
    return t != 0 and (t * 4) % size != 0


def build_fft_cluster_dag(
    plan: FFTPlan,
    config: Optional[ImagineConfig] = None,
    cluster: int = 0,
    parallel: bool = True,
) -> ClusterKernelDag:
    """Dataflow DAG of ``cluster``'s share of one transform.

    Butterflies are owned by the cluster holding their first element;
    each stage's butterflies depend on the producing operations of the
    previous stage (locally) or on a communication receive (remotely),
    so the list schedule sees the true stage-by-stage dependency
    structure rather than a flat op bag.
    """
    config = config or ImagineConfig()
    if plan.n % config.clusters:
        raise ConfigError(
            f"transform size {plan.n} not divisible by {config.clusters} "
            "clusters"
        )
    points_per_cluster = plan.n // config.clusters
    lo = cluster * points_per_cluster
    hi = lo + points_per_cluster

    ops: List[MicroOp] = []
    mix = {"adds": 0.0, "muls": 0.0, "comms": 0.0}

    def emit(fu: str, deps: Tuple[int, ...], latency: int) -> int:
        ops.append(MicroOp(fu, deps=deps, latency=latency))
        return len(ops) - 1

    # producer[element] = index of the op whose result is that element's
    # current value on this cluster (None = initial SRF value).
    producer: Dict[int, Optional[int]] = {e: None for e in range(lo, hi)}

    for stage in plan.stages:
        size, radix, span = stage.size, stage.radix, stage.span
        new_producer: Dict[int, Optional[int]] = {}
        for block_base in range(0, plan.n, size):
            for k in range(span):
                elements = [block_base + k + j * span for j in range(radix)]
                if not (lo <= elements[0] < hi):
                    continue
                # Gather operand-producing ops; import remote ones.
                deps: List[int] = []
                for e in elements:
                    if lo <= e < hi:
                        if producer.get(e) is not None:
                            deps.append(producer[e])
                    elif parallel:
                        # Receive one complex value: two words through
                        # the communication unit.
                        recv0 = emit("comm", (), COMM_LATENCY)
                        recv1 = emit("comm", (), COMM_LATENCY)
                        mix["comms"] += 2
                        deps.extend((recv0, recv1))
                operand_deps = tuple(deps)

                # Twiddle multiplies (4 real muls + 2 adds per
                # non-trivial factor), feeding the butterfly core.
                core_inputs: List[int] = list(operand_deps)
                for j in range(1, radix):
                    if _nontrivial_twiddle(size, j, k):
                        m1 = emit("mul", operand_deps, MUL_LATENCY)
                        m2 = emit("mul", operand_deps, MUL_LATENCY)
                        m3 = emit("mul", operand_deps, MUL_LATENCY)
                        m4 = emit("mul", operand_deps, MUL_LATENCY)
                        a1 = emit("add", (m1, m2), ADD_LATENCY)
                        a2 = emit("add", (m3, m4), ADD_LATENCY)
                        mix["muls"] += 4
                        mix["adds"] += 2
                        core_inputs.extend((a1, a2))

                # Butterfly core: two levels of complex additions
                # (radix-2: 2 cadds; radix-4: a,b,c,d then 4 outputs).
                core_deps = tuple(core_inputs)
                if radix == 2:
                    first = [emit("add", core_deps, ADD_LATENCY)
                             for _ in range(2)]
                    second = [emit("add", tuple(first), ADD_LATENCY)
                              for _ in range(2)]
                    mix["adds"] += 4
                else:
                    first = [emit("add", core_deps, ADD_LATENCY)
                             for _ in range(8)]
                    second = [emit("add", tuple(first), ADD_LATENCY)
                              for _ in range(8)]
                    mix["adds"] += 16
                last = second[-1]
                for e in elements:
                    if lo <= e < hi:
                        new_producer[e] = last
        for e, op_idx in new_producer.items():
            producer[e] = op_idx

    return ClusterKernelDag(
        ops=tuple(ops),
        mix=ClusterOpMix(
            adds=mix["adds"], muls=mix["muls"], comms=mix["comms"]
        ),
    )


@dataclass(frozen=True)
class ScheduleValidation:
    """Comparison of the list schedule against the resource bound."""

    list_cycles: int
    resource_bound_cycles: float
    packing_inefficiency: float

    @property
    def summary(self) -> str:
        return (
            f"list schedule {self.list_cycles} cycles vs resource bound "
            f"{self.resource_bound_cycles:.1f} "
            f"(inefficiency x{self.packing_inefficiency:.2f})"
        )


def validate_fft_schedule(
    plan: FFTPlan,
    config: Optional[ImagineConfig] = None,
    parallel: bool = True,
) -> ScheduleValidation:
    """List-schedule the cluster-0 DAG and compare to the resource bound.

    The returned inefficiency (list / bound) is the quantity the
    calibration's ``cluster_schedule_inefficiency`` approximates.
    """
    config = config or ImagineConfig()
    dag = build_fft_cluster_dag(plan, config, parallel=parallel)
    listed = list_schedule_cycles(list(dag.ops), config)
    arithmetic = ClusterOpMix(adds=dag.mix.adds, muls=dag.mix.muls)
    bound = cluster_schedule_cycles(arithmetic, config)
    bound = max(bound, dag.mix.comms / config.comm_units_per_cluster)
    if bound <= 0:
        raise ConfigError("degenerate DAG: zero resource bound")
    return ScheduleValidation(
        list_cycles=listed,
        resource_bound_cycles=bound,
        packing_inefficiency=listed / bound,
    )
