"""Imagine: the Stanford stream-processor prototype (§2.2).

"The stream processing is implemented with eight ALU clusters (with 6 ALUs
each) with a large stream register file (SRF), and a high-bandwidth
interconnect between them.  The size of SRF is 128 Kbytes. ... Each
cluster has 6 arithmetic units (three adders, two multipliers, and one
divider) and one communication interface ... The Imagine prototype
implementation has two memory controllers, each of which can process a
memory access stream."
"""

from repro.arch.imagine.cluster import ClusterOpMix, cluster_schedule_cycles
from repro.arch.imagine.config import ImagineConfig
from repro.arch.imagine.machine import IMAGINE_SPEC, ImagineMachine

__all__ = [
    "ClusterOpMix",
    "IMAGINE_SPEC",
    "ImagineConfig",
    "ImagineMachine",
    "cluster_schedule_cycles",
]
