"""Imagine microarchitectural parameters (§2.2 published values)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import KIB


@dataclass(frozen=True)
class ImagineConfig:
    """Parameters of the Imagine implementation the paper evaluated.

    Peak: 300 MHz x 8 clusters x 6 ALUs = 14.4 GFLOPS (§2.2).  The memory
    interface is two stream controllers of one word/cycle each — §4.2
    stresses this is "a processor implementation choice and ... not a
    limitation of the stream architecture", and that routing streams
    through the network port would perform the same ("the network port has
    peak performance of two words per cycle"), which the corner-turn
    ablation bench reproduces.
    """

    clock_hz: float = 300e6
    clusters: int = 8
    adders_per_cluster: int = 3
    multipliers_per_cluster: int = 2
    dividers_per_cluster: int = 1
    comm_units_per_cluster: int = 1
    srf_bytes: int = 128 * KIB
    srf_block_bytes: int = 128
    srf_words_per_cycle: int = 16
    memory_controllers: int = 2
    controller_words_per_cycle: int = 1
    network_port_words_per_cycle: int = 2
    dram_banks: int = 8
    dram_row_words: int = 512

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.clusters < 1:
            raise ConfigError("need at least one cluster")
        for name in (
            "adders_per_cluster",
            "multipliers_per_cluster",
            "dividers_per_cluster",
            "comm_units_per_cluster",
            "memory_controllers",
            "controller_words_per_cycle",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be at least 1")
        if self.srf_bytes < self.srf_block_bytes:
            raise ConfigError("SRF smaller than one SRF block")

    @property
    def alus_per_cluster(self) -> int:
        return (
            self.adders_per_cluster
            + self.multipliers_per_cluster
            + self.dividers_per_cluster
        )

    @property
    def total_alus(self) -> int:
        return self.clusters * self.alus_per_cluster

    @property
    def memory_words_per_cycle(self) -> int:
        """Aggregate off-chip stream bandwidth (Table 1's "off-chip 2")."""
        return self.memory_controllers * self.controller_words_per_cycle

    @property
    def srf_words(self) -> int:
        return self.srf_bytes // 4
