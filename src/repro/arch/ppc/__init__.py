"""PowerPC G4 + AltiVec: the paper's measured baseline (§4.1, §4.5).

"For comparison purposes, actual measurements of performance were taken
using a single node of a 1 GHz PowerPC G4-based system (Apple PowerMac
G4).  An implementation using AltiVec technology was used for speedup
comparison. ... The Altivec instruction set allows four 32-bit
floating-point operations to be specified and executed in a single
instruction."

We model the G4 as a 3-wide in-order superscalar with a scalar FPU, a
4-wide AltiVec unit, and a two-level cache hierarchy; the scalar and
AltiVec kernel variants are separate mappings sharing this machine.
"""

from repro.arch.ppc.config import PpcConfig
from repro.arch.ppc.machine import ALTIVEC_SPEC, PPC_SPEC, PpcMachine

__all__ = ["ALTIVEC_SPEC", "PPC_SPEC", "PpcConfig", "PpcMachine"]
