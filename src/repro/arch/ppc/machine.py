"""The PowerPC G4 / AltiVec machine model.

Costing methods the scalar (``ppc``) and AltiVec (``altivec``) mappings
compose:

* :meth:`PpcMachine.issue_cycles` — 3-wide in-order issue of a scalar
  instruction count.
* :meth:`PpcMachine.vector_issue_cycles` — one AltiVec operation per
  cycle (each does four 32-bit lanes).
* :meth:`PpcMachine.make_hierarchy` — a fresh L1+L2 cache hierarchy for
  trace-driven stall accounting; closed-form miss counts used at full
  size are validated against it at small sizes in the tests.
* stall helpers for scalar FP dependency chains, AltiVec pipeline
  dependencies, and libm trig calls (the scalar FFT's twiddle
  recomputation — see :mod:`repro.calibration` for the §4.5 anchor).
"""

from __future__ import annotations

from typing import Optional

from repro.arch.base import MachineSpec
from repro.arch.ppc.config import PpcConfig
from repro.calibration import DEFAULT_CALIBRATION, PpcCalibration
from repro.errors import ConfigError
from repro.memory.cache import CacheConfig, CacheHierarchy
from repro.trace.tracer import active_tracer

#: Table 2 column: 1000 MHz, 4 ALUs, 5 peak GFLOPS.  ``flops_per_cycle``
#: differs between the scalar pipeline (one fused op: 2 flops/cycle) and
#: the AltiVec unit (4 lanes x madd: 8 flops/cycle).
PPC_SPEC = MachineSpec(
    name="ppc",
    display_name="PPC",
    clock_hz=1e9,
    n_alus=4,
    peak_gflops=5.0,
    flops_per_cycle=2.0,
)

ALTIVEC_SPEC = MachineSpec(
    name="altivec",
    display_name="Altivec",
    clock_hz=1e9,
    n_alus=4,
    peak_gflops=5.0,
    flops_per_cycle=8.0,
)


class PpcMachine:
    """Stateful G4 resources plus costing methods (see module doc)."""

    spec = PPC_SPEC
    altivec_spec = ALTIVEC_SPEC

    def __init__(
        self,
        config: Optional[PpcConfig] = None,
        calibration: Optional[PpcCalibration] = None,
    ) -> None:
        self.config = config or PpcConfig()
        self.cal = calibration or DEFAULT_CALIBRATION.ppc

    def make_hierarchy(self) -> CacheHierarchy:
        """A fresh (cold) L1+L2 hierarchy for one kernel run."""
        l1 = CacheConfig(
            name="ppc-l1",
            size_bytes=self.config.l1_size_bytes,
            line_bytes=self.config.l1_line_bytes,
            assoc=self.config.l1_assoc,
            hit_cycles=0.0,  # folded into the load/store instruction cost
        )
        l2 = CacheConfig(
            name="ppc-l2",
            size_bytes=self.config.l2_size_bytes,
            line_bytes=self.config.l2_line_bytes,
            assoc=self.config.l2_assoc,
            hit_cycles=self.cal.l2_hit_cycles,
        )
        return CacheHierarchy(l1, l2, memory_latency=self.cal.dram_latency_cycles)

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def issue_cycles(self, instructions: float) -> float:
        """Front-end cycles for ``instructions`` scalar instructions."""
        if instructions < 0:
            raise ConfigError("negative instruction count")
        cycles = instructions / self.config.issue_width
        tracer = active_tracer()
        if tracer is not None and cycles > 0:
            tracer.span(
                "scalar issue",
                "ppc/issue",
                cycles,
                args={"instructions": instructions},
            )
        return cycles

    def vector_issue_cycles(self, vector_ops: float) -> float:
        """Cycles to issue ``vector_ops`` AltiVec operations (one per
        cycle; address/loop scalar code can pair with them and is charged
        separately through :meth:`issue_cycles`)."""
        if vector_ops < 0:
            raise ConfigError("negative vector op count")
        tracer = active_tracer()
        if tracer is not None and vector_ops > 0:
            tracer.span(
                "altivec issue",
                "ppc/issue",
                vector_ops,
                args={"vector_ops": vector_ops},
            )
        return vector_ops

    # ------------------------------------------------------------------
    # Stall models
    # ------------------------------------------------------------------

    def scalar_fp_stall_cycles(self, dependent_ops: float) -> float:
        """Exposed FP-latency cycles for ``dependent_ops`` chained scalar
        floating-point operations."""
        if dependent_ops < 0:
            raise ConfigError("negative op count")
        stall = dependent_ops * self.cal.fp_dependency_stall
        tracer = active_tracer()
        if tracer is not None and stall > 0:
            tracer.span(
                "fp dependency stall",
                "ppc/stall",
                stall,
                args={"dependent_ops": dependent_ops},
            )
        return stall

    def trig_cycles(self, calls: float) -> float:
        """Cycles spent in libm sin/cos pairs (scalar FFT twiddle
        recomputation)."""
        if calls < 0:
            raise ConfigError("negative call count")
        cycles = calls * self.cal.trig_call_cycles
        tracer = active_tracer()
        if tracer is not None and cycles > 0:
            tracer.span(
                "libm trig", "ppc/issue", cycles, args={"calls": calls}
            )
        return cycles

    def vector_stall_cycles(self, butterfly_groups: float) -> float:
        """Exposed AltiVec pipeline-latency cycles across ``butterfly_
        groups`` dependent vector op groups."""
        if butterfly_groups < 0:
            raise ConfigError("negative group count")
        stall = (
            butterfly_groups * self.cal.vector_dependency_stall_per_butterfly
        )
        tracer = active_tracer()
        if tracer is not None and stall > 0:
            tracer.span(
                "vector dependency stall",
                "ppc/stall",
                stall,
                args={"butterfly_groups": butterfly_groups},
            )
        return stall

    # ------------------------------------------------------------------
    # Derived cache cost helpers (closed forms used at full size)
    # ------------------------------------------------------------------

    def l2_hit_stall(self, hits: float) -> float:
        if hits < 0:
            raise ConfigError("negative hit count")
        return hits * self.cal.l2_hit_cycles

    def memory_miss_stall(self, misses: float) -> float:
        """Stall for lines missing L2 (lookup + DRAM access)."""
        if misses < 0:
            raise ConfigError("negative miss count")
        return misses * (self.cal.l2_hit_cycles + self.cal.dram_latency_cycles)

    def __repr__(self) -> str:
        return f"PpcMachine(clock={self.config.clock_hz / 1e6:.0f} MHz)"
