"""PowerPC G4 (7400-class) parameters at the paper's 1 GHz clock."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import KIB


@dataclass(frozen=True)
class PpcConfig:
    """G4 microarchitecture parameters used by the baseline model.

    Issue width 3 (two integer units plus FPU/vector per cycle in the
    7400-series front end), 32 KB 8-way L1 data cache with 32-byte lines,
    and an external 256 KB L2 (the PowerMac G4's backside cache, modelled
    with a uniform hit latency).  AltiVec executes one 4 x 32-bit vector
    operation per cycle.
    """

    clock_hz: float = 1e9
    issue_width: int = 3
    altivec_width: int = 4
    l1_size_bytes: int = 32 * KIB
    l1_line_bytes: int = 32
    l1_assoc: int = 8
    l2_size_bytes: int = 256 * KIB
    l2_line_bytes: int = 32
    l2_assoc: int = 8

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.issue_width < 1:
            raise ConfigError("issue width must be positive")
        if self.altivec_width < 1:
            raise ConfigError("AltiVec width must be positive")
        for prefix in ("l1", "l2"):
            size = getattr(self, f"{prefix}_size_bytes")
            line = getattr(self, f"{prefix}_line_bytes")
            assoc = getattr(self, f"{prefix}_assoc")
            if size <= 0 or line <= 0 or assoc <= 0:
                raise ConfigError(f"{prefix} geometry must be positive")
            if size % line:
                raise ConfigError(f"{prefix} size not a multiple of line")

    @property
    def l1_line_words(self) -> int:
        return self.l1_line_bytes // 4

    @property
    def l1_lines(self) -> int:
        return self.l1_size_bytes // self.l1_line_bytes

    @property
    def l2_lines(self) -> int:
        return self.l2_size_bytes // self.l2_line_bytes
