"""Common machine-model types: specs and kernel-run records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.kernels.opcount import OpCounts
from repro.sim.accounting import CycleBreakdown
from repro.units import GIGA, KILO


@dataclass(frozen=True)
class MachineSpec:
    """Headline machine parameters (the paper's Table 2 row).

    ``peak_gflops`` is the *published* figure (Table 2) rather than a
    derived one, because the paper's values fold in implementation details
    (e.g. Raw's 4.64 GFLOPS rather than 16 tiles x 300 MHz = 4.8);
    ``flops_per_cycle`` is the per-cycle arithmetic peak used for
    utilization accounting (§4.3's "percent of peak" statements).
    """

    name: str
    display_name: str
    clock_hz: float
    n_alus: int
    peak_gflops: float
    flops_per_cycle: float

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError(f"{self.name}: clock must be positive")
        if self.n_alus <= 0:
            raise ConfigError(f"{self.name}: ALU count must be positive")
        if self.peak_gflops <= 0 or self.flops_per_cycle <= 0:
            raise ConfigError(f"{self.name}: peaks must be positive")

    @property
    def clock_mhz(self) -> float:
        return self.clock_hz / 1e6


@dataclass
class KernelRun:
    """The result of running one kernel mapping on one machine.

    Combines the *functional* outcome (``output``, checked against the
    reference implementation by the mapping before this record is built)
    with the *performance* outcome (``breakdown`` of cycles by category,
    operation census, and free-form ``metrics`` such as ALU utilization
    or percent-of-peak that the paper quotes).
    """

    kernel: str
    machine: str
    spec: MachineSpec
    breakdown: CycleBreakdown
    ops: OpCounts
    output: Optional[np.ndarray] = None
    functional_ok: bool = True
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        """Total modelled cycles."""
        return self.breakdown.total

    @property
    def kilocycles(self) -> float:
        """Cycles in the paper's Table 3 unit (10^3 cycles)."""
        return self.cycles / KILO

    @property
    def seconds(self) -> float:
        """Execution time at the machine's clock (Figure 9's unit)."""
        return self.cycles / self.spec.clock_hz

    @property
    def flops_per_cycle(self) -> float:
        """Achieved arithmetic throughput."""
        if self.cycles == 0:
            return 0.0
        return self.ops.flops / self.cycles

    @property
    def percent_of_peak(self) -> float:
        """Achieved arithmetic throughput as a fraction of machine peak
        (the quantity behind §4.3's "31.4% of the peak" statements)."""
        return self.flops_per_cycle / self.spec.flops_per_cycle

    @property
    def gflops(self) -> float:
        return self.flops_per_cycle * self.spec.clock_hz / GIGA

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"{self.kernel} on {self.spec.display_name}: "
            f"{self.kilocycles:,.0f} kcycles "
            f"({self.seconds * 1e3:.2f} ms at {self.spec.clock_mhz:.0f} MHz)",
            self.breakdown.format(),
            f"ops: {self.ops.format()}",
            f"achieved {self.flops_per_cycle:.2f} flops/cycle "
            f"({100 * self.percent_of_peak:.1f}% of peak)",
            f"functional check: {'ok' if self.functional_ok else 'FAILED'}",
        ]
        for key, value in self.metrics.items():
            lines.append(f"metric {key} = {value}")
        return "\n".join(lines)
