"""Corner turn on Imagine (§3.1, §4.2).

"On the Imagine processor, we divide the matrix into multi-row strips
that allows us to use the stream register files.  We use four input
streams and one output stream simultaneously.  Since the rows within a
stream are read sequentially, we maximize memory bandwidth during the
reading.  The Imagine clusters are used to route data in the correct
output order. ... The eight words in a block are written sequentially,
but the blocks are written with a non-unit stride."

Model: eight-row strips (four input streams of two rows each), expressed
as an explicit host stream program executed by
:mod:`repro.arch.imagine.stream_program`.  Reads stream sequentially at
one word per controller-cycle; the output stream writes each destination
row's eight-word run sequentially but jumps a full destination pitch
between runs, so the (serialized-controller) DRAM model charges a row
switch per block — §4.2's "87% of the cycles ... are due to memory
transfers" emerges from exactly this.  The routing kernel cannot be
software-pipelined against memory because one strip's input and output
streams fill the 128 KB SRF ("a limitation induced by the stream
descriptor registers prevented full software pipelining"): in the stream
program this is a dependency structure (strip s+1's loads wait on kernel
s; kernel s waits on store s-1), and the exposed kernel time — the
remaining ~13% — is an outcome of the schedule.

The ``via_network_port`` option reproduces §4.2's what-if: routing the
streams through the two-word/cycle network port instead of the memory
controllers leaves performance unchanged because the DRAM side still
bounds the transfer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.base import KernelRun
from repro.arch.imagine.cluster import ClusterOpMix, cluster_schedule_cycles
from repro.arch.imagine.machine import ImagineMachine
from repro.arch.imagine.stream_program import (
    StreamProgram,
    execute_measured,
    reschedule,
)
from repro.calibration import Calibration
from repro.kernels.corner_turn import CornerTurnWorkload, corner_turn_reference
from repro.kernels.workloads import canonical_corner_turn
from repro.mappings import batch
from repro.mappings.base import functional_match, require, resolve_calibration
from repro.memory.streams import Custom, Sequential
from repro.sim.accounting import CycleBreakdown
from repro.units import WORD_BYTES

STRIP_ROWS = 8
INPUT_STREAMS = 4
WRITE_BLOCK_WORDS = 8


def run(
    workload: Optional[CornerTurnWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
    via_network_port: bool = False,
) -> KernelRun:
    """Run the Imagine corner turn; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(
        _structure(workload, cal, seed, via_network_port), [cal]
    )[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CornerTurnWorkload] = None,
    seed: int = 0,
    via_network_port: bool = False,
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (stream program, DRAM activation counts, functional transpose); each
    cell replays the schedule with its own timing constants."""
    cals = list(calibrations)
    batch.require_uniform_structure("imagine", cals)
    return _evaluate(
        _structure(workload, cals[0], seed, via_network_port), cals
    )


def _structure(
    workload: Optional[CornerTurnWorkload],
    cal: Calibration,
    seed: int,
    via_network_port: bool,
) -> Dict:
    """The calibration-independent pass: strip sizing, the host stream
    program, one measured execution (address streams through the DRAM
    model), and the functional transpose."""
    workload = workload or canonical_corner_turn()
    machine = ImagineMachine(calibration=cal.imagine)

    # Strip height: eight rows at the canonical width (the four input
    # streams carry two rows each); for wider matrices the strip narrows
    # so one strip's input and output streams still fill — but fit — the
    # SRF, which is the §4.2 "stream descriptor" situation either way.
    strip_rows = STRIP_ROWS
    while strip_rows > 1 and (
        2 * strip_rows * workload.cols * WORD_BYTES > machine.config.srf_bytes
    ):
        strip_rows //= 2
    require(
        workload.rows % strip_rows == 0,
        f"matrix rows {workload.rows} not divisible by the "
        f"{strip_rows}-row strip",
    )
    require(
        workload.cols % WRITE_BLOCK_WORDS == 0,
        f"matrix cols {workload.cols} not divisible by the write block",
    )

    # §3.1 sized the matrix to exceed the SRF (recorded as a metric so
    # small test workloads still run); a strip must fit, which is a hard
    # constraint of the mapping.
    strip_words = strip_rows * workload.cols
    strip_bytes = 2 * strip_words * WORD_BYTES  # input + output streams
    exceeds_srf = workload.nbytes > machine.config.srf_bytes
    machine.srf.allocate("strip-in+out", strip_bytes)

    pitch = workload.cols
    dest_pitch = workload.rows
    n_strips = workload.rows // strip_rows
    n_streams = min(INPUT_STREAMS, strip_rows)
    rows_per_stream = strip_rows // n_streams

    dest_rows = np.arange(workload.cols, dtype=np.int64)
    dest_base = workload.words  # destination matrix follows the source

    # Routing kernel: every word crosses the cluster array once; each
    # invocation pays the software-pipeline prologue.
    route_mix = ClusterOpMix(comms=machine.spread_over_clusters(strip_words))
    kernel_per_strip = (
        machine.kernel_cycles(route_mix) + machine.kernel_startups(1)
    )

    # Host stream program.  The SRF holds exactly one strip's input and
    # output buffers, so strip s+1's loads wait for kernel s (input
    # buffer freed) and kernel s waits for store s-1 (output buffer
    # freed) — the "stream descriptor" serialization of §4.2 falls out
    # of these dependencies.
    program = StreamProgram()
    for strip in range(n_strips):
        load_names = []
        for s in range(n_streams):
            start = (strip * strip_rows + s * rows_per_stream) * pitch
            name = f"load{strip}.{s}"
            deps = (f"kernel{strip - 1}",) if strip else ()
            program.load(
                name, Sequential(start, rows_per_stream * pitch), deps=deps
            )
            load_names.append(name)
        kernel_deps = list(load_names)
        if strip:
            kernel_deps.append(f"store{strip - 1}")
        program.kernel(f"kernel{strip}", kernel_per_strip, deps=kernel_deps)
        # Output stream: one strip_rows-word run per destination row
        # (eight words at the canonical strip height), non-unit stride
        # between runs.
        write_addr = (
            dest_base
            + dest_rows[:, None] * dest_pitch
            + strip * strip_rows
            + np.arange(strip_rows)[None, :]
        ).reshape(-1)
        program.store(
            f"store{strip}",
            Custom(write_addr, label=f"strip{strip}-out"),
            deps=(f"kernel{strip}",),
        )

    _, op_costs = execute_measured(program, machine)

    port_bound = machine.network_port_time(2.0 * workload.words)

    # Row activations: the write streams dominate (one per strip_rows-
    # word run at canonical pitch); subtract the sequential reads' share.
    read_activations = (
        workload.words // machine.dram.config.row_words + n_strips * n_streams
    )
    write_activations = max(
        0, machine.dram.total_activations - read_activations
    )

    matrix = workload.make_matrix(seed)
    output = np.empty((workload.cols, workload.rows), dtype=matrix.dtype)
    for strip in range(n_strips):
        r0 = strip * strip_rows
        output[:, r0 : r0 + strip_rows] = matrix[r0 : r0 + strip_rows, :].T
    ok = functional_match(output, corner_turn_reference(matrix))

    return {
        "workload": workload,
        "machine": machine,
        "via_network_port": via_network_port,
        "op_costs": op_costs,
        "route_arith": ClusterOpMix(
            adds=route_mix.adds, muls=route_mix.muls, divs=route_mix.divs
        ),
        "route_comms": route_mix.comms,
        "n_strips": n_strips,
        "strip_rows": strip_rows,
        "port_bound": port_bound,
        "write_activations": write_activations,
        "exceeds_srf": exceeds_srf,
        "output": output,
        "ok": ok,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration: the kernel duration and
    memory timings are rebuilt from each cell's constants and the
    dependency schedule is replayed."""
    workload = s["workload"]
    machine = s["machine"]
    n_strips = s["n_strips"]

    row_cycle = batch.cal_vector(cals, "imagine", "dram_row_cycle")
    gather_derate = batch.cal_vector(cals, "imagine", "gather_derate")
    inefficiency = batch.cal_vector(
        cals, "imagine", "cluster_schedule_inefficiency"
    )
    comm_exposure = batch.cal_vector(cals, "imagine", "comm_exposure")
    kernel_startup = batch.cal_vector(cals, "imagine", "kernel_startup")

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        kernel_per_strip = (
            cluster_schedule_cycles(
                s["route_arith"],
                machine.config,
                inefficiency=float(inefficiency[i]),
            )
            + s["route_comms"] * float(comm_exposure[i])
        ) + 1 * float(kernel_startup[i])
        schedule = reschedule(
            s["op_costs"],
            machine,
            row_cycle=float(row_cycle[i]),
            gather_derate=float(gather_derate[i]),
            kernel_cycles={
                f"kernel{k}": kernel_per_strip for k in range(n_strips)
            },
        )
        memory = schedule.memory_busy
        kernel_exposed = schedule.exposed_over_memory
        if s["via_network_port"]:
            # §4.2: the network port also peaks at two words/cycle, and
            # the external DRAM behaves the same, so the bound is
            # unchanged.
            memory = max(memory, s["port_bound"])

        breakdown = CycleBreakdown(
            {"memory": memory, "kernel (exposed)": kernel_exposed}
        )
        total = breakdown.total
        runs.append(
            KernelRun(
                kernel="corner_turn",
                machine="imagine",
                spec=machine.spec,
                breakdown=breakdown,
                ops=workload.op_counts(),
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "strips": n_strips,
                    "strip_rows": s["strip_rows"],
                    "write_row_activations": s["write_activations"],
                    "via_network_port": s["via_network_port"],
                    "matrix_exceeds_srf": s["exceeds_srf"],
                    # §4.2: "87% of the cycles in the Imagine corner turn
                    # are due to memory transfers.  The remaining 13% ...
                    # are due to unoverlapped cluster instructions."
                    "memory_fraction": memory / total if total else 0.0,
                    "unoverlapped_kernel_fraction": (
                        kernel_exposed / total if total else 0.0
                    ),
                    "kernel_cycles_total": n_strips * kernel_per_strip,
                },
            )
        )
    return runs
