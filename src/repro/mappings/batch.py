"""Shared helpers for tensor-batched mapping evaluation.

The tensorized sweep engine (:mod:`repro.perf.tensorsweep`) evaluates a
whole grid of calibrations against one kernel/machine/workload cell in a
single pass.  Every mapping module supports this by splitting its
``run`` into two halves:

* ``_structure(...)`` — the calibration-independent heavy lifting:
  address-stream construction, DRAM activation counting, TLB walks,
  cache-trace simulation, functional reference computation.  Everything
  here is a pure function of the workload, the seed, the mapping
  options, and the *structural* calibration fields (integer geometry
  such as TLB entry counts — see :data:`STRUCTURAL_CAL_FIELDS`).
* ``_evaluate(structure, cals)`` — assembly of the per-cell cycle
  ledgers from the structure.  Calibration constants enter the models
  only through closed-form cost expressions, so this half vectorises
  over a leading batch axis: a term like "activation cycles" becomes a
  ``(B, S)`` numpy expression reduced along the segment axis.

``run()`` is then exactly the batch of one, which is what makes the
batch path *bit-identical* to per-cell evaluation: both sides execute
the same expressions, elementwise over the batch axis, and numpy's
pairwise summation reduces a row of a C-contiguous 2-D array exactly as
it reduces the equivalent 1-D array.

This module holds the pieces the mappings share: the per-machine split
of calibration fields into batchable (float constants that may vary
within one batch) vs structural (geometry that selects code paths and
must be uniform), and small helpers for extracting batch-axis vectors.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.calibration import Calibration
from repro.errors import MappingError

#: Calibration-group name each registry machine reads.
CAL_GROUP: Dict[str, str] = {
    "ppc": "ppc",
    "altivec": "ppc",
    "viram": "viram",
    "imagine": "imagine",
    "raw": "raw",
}

#: Per calibration group: fields that select *structure* — integer
#: geometry and pass counts that change which addresses are generated or
#: how many times data moves.  A tensor batch must hold these fixed;
#: every other (float) field of the group may vary cell to cell.
STRUCTURAL_CAL_FIELDS: Dict[str, Tuple[str, ...]] = {
    "viram": ("tlb_entries", "page_words", "spill_passes"),
    "imagine": (),
    "raw": (),
    "ppc": (),
}


def structural_signature(group: str, cal: Calibration) -> Tuple:
    """The structural-field values of ``cal``'s ``group`` — cells whose
    signatures differ cannot share one batch structure."""
    cal_group = getattr(cal, group)
    return tuple(
        getattr(cal_group, name) for name in STRUCTURAL_CAL_FIELDS[group]
    )


def require_uniform_structure(
    group: str, cals: Sequence[Calibration]
) -> None:
    """Raise :class:`MappingError` unless every calibration in the batch
    agrees on the group's structural fields."""
    if not cals:
        raise MappingError("empty calibration batch")
    first = structural_signature(group, cals[0])
    for cal in cals[1:]:
        if structural_signature(group, cal) != first:
            raise MappingError(
                f"calibration batch mixes structural {group} fields "
                f"({STRUCTURAL_CAL_FIELDS[group]}); split the batch"
            )


def cal_vector(
    cals: Sequence[Calibration], group: str, field: str
) -> np.ndarray:
    """The batch axis of one calibration constant: ``cals[i].group.field``
    as a float64 array of shape ``(len(cals),)``."""
    return np.array(
        [getattr(getattr(cal, group), field) for cal in cals],
        dtype=np.float64,
    )


#: Cap on elements of a ``(B, S)`` batch-by-segment intermediate; larger
#: batches are evaluated in row chunks (chunking the batch axis cannot
#: change any per-row result).
_BATCH_ELEMENT_BUDGET = 4_000_000


def batch_rows(n_cells: int, n_segments: int):
    """Yield ``(start, stop)`` batch-axis chunks keeping ``(B, S)``
    intermediates under the element budget."""
    if n_segments <= 0:
        yield 0, n_cells
        return
    step = max(1, _BATCH_ELEMENT_BUDGET // n_segments)
    for start in range(0, n_cells, step):
        yield start, min(n_cells, start + step)
