"""Shared helpers for the kernel mappings."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.calibration import DEFAULT_CALIBRATION, Calibration
from repro.errors import MappingError


def functional_match(
    output: np.ndarray, reference: np.ndarray, rtol: float = 1e-5
) -> bool:
    """Whether a mapping's output matches the reference implementation.

    Integer outputs must match exactly; floating outputs to ``rtol``.
    """
    if output.shape != reference.shape:
        return False
    if np.issubdtype(output.dtype, np.integer) and np.issubdtype(
        reference.dtype, np.integer
    ):
        return bool(np.array_equal(output, reference))
    return bool(np.allclose(output, reference, rtol=rtol, atol=1e-6))


def resolve_calibration(calibration: Optional[Calibration]) -> Calibration:
    return calibration if calibration is not None else DEFAULT_CALIBRATION


def require(condition: bool, message: str) -> None:
    """Raise :class:`MappingError` unless ``condition`` holds."""
    if not condition:
        raise MappingError(message)
