"""Beam steering on the PowerPC G4, scalar and AltiVec (§4.1, §4.5).

§4.5: AltiVec gains "about two for beam steering".

Scalar model — one output per loop iteration forms a single dependency
chain (two table loads feeding five additions, a shift, and a store), so
the in-order G4 retires roughly one chain element per cycle plus the
exposed load-use latency; no instruction-level parallelism across
iterations.  Cache behaviour is *trace-driven*: the real coarse/fine
table read sequence runs through the two-level hierarchy, and the output
write stream charges the calibrated store-queue-exposed fraction of its
line-miss latency.

AltiVec model — four outputs per iteration: eight scalar table loads
(pipelined), two pack permutes, the six arithmetic ops as vector
instructions, one vector store, and two address updates; the dependency
chain is shared by four outputs, which is where the ~2x comes from.  The
memory-system stalls are identical — the kernel is table-bound either
way.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arch.base import KernelRun
from repro.arch.ppc.machine import PpcMachine
from repro.calibration import Calibration
from repro.kernels.beam_steering import (
    BeamSteeringWorkload,
    beam_steering_reference,
    make_tables,
)
from repro.kernels.workloads import canonical_beam_steering
from repro.mappings.base import resolve_calibration
from repro.sim.accounting import CycleBreakdown

#: Scalar chain per output: 2 loads + 5 adds + 1 shift + 1 store + 2
#: address updates + 2 loop control = 13 instructions.
SCALAR_CHAIN_INSTR = 13.0
LOAD_USE_LATENCY = 3.0
LOADS_PER_OUTPUT = 2.0

#: AltiVec group of four outputs: 8 scalar loads + 2 vperm packs + 6
#: vector arithmetic + 1 vector store + 2 address updates = 19.
ALTIVEC_GROUP_INSTR = 19.0


def table_read_trace(workload: BeamSteeringWorkload) -> np.ndarray:
    """Word addresses of every calibration-table read, in program order.

    Layout: coarse table at word 0, fine table immediately after.  Loop
    order is (dwell, direction, element), interleaving the two reads of
    each output — exactly what the reference implementation computes.
    """
    coarse_base = 0
    fine_base = workload.coarse_table_words
    e = np.arange(workload.elements, dtype=np.int64)
    per_direction = []
    for d in range(workload.directions):
        pair = np.empty(2 * workload.elements, dtype=np.int64)
        pair[0::2] = coarse_base + e
        pair[1::2] = fine_base + e * workload.directions + d
        per_direction.append(pair)
    one_dwell = np.concatenate(per_direction)
    return np.tile(one_dwell, workload.dwells)


def _memory_stalls(
    workload: BeamSteeringWorkload, machine: PpcMachine
) -> dict:
    """Trace-driven read stalls + store-queue-exposed write stalls."""
    hierarchy = machine.make_hierarchy()
    reads = hierarchy.run_trace(table_read_trace(workload))
    write_lines = workload.outputs / machine.config.l1_line_words
    write_stall = (
        machine.memory_miss_stall(write_lines)
        * machine.cal.store_queue_exposure
    )
    return {
        "read_stall": reads.stall_cycles,
        "write_stall": write_stall,
        "l1_miss_rate": reads.l1.miss_rate,
    }


def _finish(
    workload: BeamSteeringWorkload,
    machine: PpcMachine,
    name: str,
    spec,
    issue: float,
    chain_stalls: float,
    seed: int,
) -> KernelRun:
    stalls = _memory_stalls(workload, machine)
    breakdown = CycleBreakdown(
        {
            "issue": issue,
            "dependency stalls": chain_stalls,
            "table read misses": stalls["read_stall"],
            "write misses": stalls["write_stall"],
        }
    )
    tables = make_tables(workload, seed)
    output = beam_steering_reference(workload, tables)
    total = breakdown.total
    return KernelRun(
        kernel="beam_steering",
        machine=name,
        spec=spec,
        breakdown=breakdown,
        ops=workload.op_counts(),
        output=output,
        functional_ok=True,  # reference is the definition; oracle in tests
        metrics={
            "outputs": workload.outputs,
            "table_l1_miss_rate": stalls["l1_miss_rate"],
            "memory_stall_fraction": (
                (stalls["read_stall"] + stalls["write_stall"]) / total
                if total
                else 0.0
            ),
        },
    )


def run_scalar(
    workload: Optional[BeamSteeringWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Scalar PPC beam steering; returns a :class:`KernelRun`."""
    workload = workload or canonical_beam_steering()
    cal = resolve_calibration(calibration)
    machine = PpcMachine(calibration=cal.ppc)
    # Fully serialised chain: one instruction per cycle.
    issue = workload.outputs * SCALAR_CHAIN_INSTR
    chain_stalls = workload.outputs * LOADS_PER_OUTPUT * (LOAD_USE_LATENCY - 1)
    return _finish(
        workload, machine, "ppc", machine.spec, issue, chain_stalls, seed
    )


def run_altivec(
    workload: Optional[BeamSteeringWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """AltiVec PPC beam steering; returns a :class:`KernelRun`."""
    workload = workload or canonical_beam_steering()
    cal = resolve_calibration(calibration)
    machine = PpcMachine(calibration=cal.ppc)
    width = machine.config.altivec_width
    groups = workload.outputs / width
    issue = groups * ALTIVEC_GROUP_INSTR
    # The loads pipeline within a group; one load-use gap per group.
    chain_stalls = groups * (LOAD_USE_LATENCY - 1)
    return _finish(
        workload,
        machine,
        "altivec",
        machine.altivec_spec,
        issue,
        chain_stalls,
        seed,
    )
