"""Beam steering on the PowerPC G4, scalar and AltiVec (§4.1, §4.5).

§4.5: AltiVec gains "about two for beam steering".

Scalar model — one output per loop iteration forms a single dependency
chain (two table loads feeding five additions, a shift, and a store), so
the in-order G4 retires roughly one chain element per cycle plus the
exposed load-use latency; no instruction-level parallelism across
iterations.  Cache behaviour is *trace-driven*: the real coarse/fine
table read sequence runs through the two-level hierarchy, and the output
write stream charges the calibrated store-queue-exposed fraction of its
line-miss latency.

AltiVec model — four outputs per iteration: eight scalar table loads
(pipelined), two pack permutes, the six arithmetic ops as vector
instructions, one vector store, and two address updates; the dependency
chain is shared by four outputs, which is where the ~2x comes from.  The
memory-system stalls are identical — the kernel is table-bound either
way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.base import KernelRun
from repro.arch.ppc.machine import PpcMachine
from repro.calibration import Calibration
from repro.kernels.beam_steering import (
    BeamSteeringWorkload,
    beam_steering_reference,
    make_tables,
)
from repro.kernels.workloads import canonical_beam_steering
from repro.mappings import batch
from repro.mappings.base import resolve_calibration
from repro.sim.accounting import CycleBreakdown

#: Scalar chain per output: 2 loads + 5 adds + 1 shift + 1 store + 2
#: address updates + 2 loop control = 13 instructions.
SCALAR_CHAIN_INSTR = 13.0
LOAD_USE_LATENCY = 3.0
LOADS_PER_OUTPUT = 2.0

#: AltiVec group of four outputs: 8 scalar loads + 2 vperm packs + 6
#: vector arithmetic + 1 vector store + 2 address updates = 19.
ALTIVEC_GROUP_INSTR = 19.0


def table_read_trace(workload: BeamSteeringWorkload) -> np.ndarray:
    """Word addresses of every calibration-table read, in program order.

    Layout: coarse table at word 0, fine table immediately after.  Loop
    order is (dwell, direction, element), interleaving the two reads of
    each output — exactly what the reference implementation computes.
    """
    coarse_base = 0
    fine_base = workload.coarse_table_words
    e = np.arange(workload.elements, dtype=np.int64)
    per_direction = []
    for d in range(workload.directions):
        pair = np.empty(2 * workload.elements, dtype=np.int64)
        pair[0::2] = coarse_base + e
        pair[1::2] = fine_base + e * workload.directions + d
        per_direction.append(pair)
    one_dwell = np.concatenate(per_direction)
    return np.tile(one_dwell, workload.dwells)


def _structure(
    workload: BeamSteeringWorkload,
    machine: PpcMachine,
    name: str,
    spec,
    issue: float,
    chain_stalls: float,
    seed: int,
) -> Dict:
    """The calibration-independent pass: the trace-driven hit/miss tally
    (pure cache geometry) and the reference output.  Latency constants
    re-enter in :func:`_evaluate`."""
    hierarchy = machine.make_hierarchy()
    reads = hierarchy.run_trace(table_read_trace(workload))
    write_lines = workload.outputs / machine.config.l1_line_words

    tables = make_tables(workload, seed)
    output = beam_steering_reference(workload, tables)

    return {
        "workload": workload,
        "machine": machine,
        "name": name,
        "spec": spec,
        "issue": issue,
        "chain_stalls": chain_stalls,
        "l2_hits": reads.l2.hits if reads.l2 is not None else 0,
        "memory_accesses": reads.memory_accesses,
        "l1_miss_rate": reads.l1.miss_rate,
        "write_lines": write_lines,
        "output": output,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration: the hierarchy tallies
    are fixed, the per-level latencies and store-queue exposure vary."""
    workload = s["workload"]

    l2_hit = batch.cal_vector(cals, "ppc", "l2_hit_cycles")
    dram = batch.cal_vector(cals, "ppc", "dram_latency_cycles")
    exposure = batch.cal_vector(cals, "ppc", "store_queue_exposure")

    read_stall = s["l2_hits"] * l2_hit + s["memory_accesses"] * (
        l2_hit + dram
    )
    write_stall = s["write_lines"] * (l2_hit + dram) * exposure

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        breakdown = CycleBreakdown(
            {
                "issue": s["issue"],
                "dependency stalls": s["chain_stalls"],
                "table read misses": float(read_stall[i]),
                "write misses": float(write_stall[i]),
            }
        )
        total = breakdown.total
        runs.append(
            KernelRun(
                kernel="beam_steering",
                machine=s["name"],
                spec=s["spec"],
                breakdown=breakdown,
                ops=workload.op_counts(),
                output=s["output"],
                functional_ok=True,  # reference is the definition
                metrics={
                    "outputs": workload.outputs,
                    "table_l1_miss_rate": s["l1_miss_rate"],
                    "memory_stall_fraction": (
                        (float(read_stall[i]) + float(write_stall[i]))
                        / total
                        if total
                        else 0.0
                    ),
                },
            )
        )
    return runs


def _scalar_structure(
    workload: Optional[BeamSteeringWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    workload = workload or canonical_beam_steering()
    machine = PpcMachine(calibration=cal.ppc)
    # Fully serialised chain: one instruction per cycle.
    issue = workload.outputs * SCALAR_CHAIN_INSTR
    chain_stalls = workload.outputs * LOADS_PER_OUTPUT * (LOAD_USE_LATENCY - 1)
    return _structure(
        workload, machine, "ppc", machine.spec, issue, chain_stalls, seed
    )


def _altivec_structure(
    workload: Optional[BeamSteeringWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    workload = workload or canonical_beam_steering()
    machine = PpcMachine(calibration=cal.ppc)
    width = machine.config.altivec_width
    groups = workload.outputs / width
    issue = groups * ALTIVEC_GROUP_INSTR
    # The loads pipeline within a group; one load-use gap per group.
    chain_stalls = groups * (LOAD_USE_LATENCY - 1)
    return _structure(
        workload,
        machine,
        "altivec",
        machine.altivec_spec,
        issue,
        chain_stalls,
        seed,
    )


def run_scalar(
    workload: Optional[BeamSteeringWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Scalar PPC beam steering; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(_scalar_structure(workload, cal, seed), [cal])[0]


def run_scalar_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[BeamSteeringWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One scalar :class:`KernelRun` per calibration, sharing one cache
    trace and reference output."""
    cals = list(calibrations)
    batch.require_uniform_structure("ppc", cals)
    return _evaluate(_scalar_structure(workload, cals[0], seed), cals)


def run_altivec(
    workload: Optional[BeamSteeringWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """AltiVec PPC beam steering; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(_altivec_structure(workload, cal, seed), [cal])[0]


def run_altivec_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[BeamSteeringWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One AltiVec :class:`KernelRun` per calibration, sharing one cache
    trace and reference output."""
    cals = list(calibrations)
    batch.require_uniform_structure("ppc", cals)
    return _evaluate(_altivec_structure(workload, cals[0], seed), cals)
