"""Corner turn on VIRAM (§3.1).

"Our V[I]RAM corner turn uses a blocking algorithm with a 16 x 16 element
matrix.  Blocking allows the vector registers to be used for temporary
storage between the loads and stores.  We used strided load operations
with padding added to the matrix rows to avoid DRAM bank conflicts.
Initial load latencies are not hidden.  Stores are done sequentially from
the vector registers to the memory."

Cycle accounting (all emergent from the machine model):

* ``strided loads`` — each 16x16 block is read column-major with strided
  vector loads at the 4-word/cycle address-generator limit.
* ``sequential stores`` — the transposed block is written as sixteen
  unit-stride 16-word runs at 8 words/cycle.
* ``dram row activations`` — the strided column walk cycles every bank
  through multiple rows, so each access reopens a row; the exposed excess
  of that activation work over the transfer time is §4.2's "overhead due
  to DRAM pre-charge cycles", while the sequential stores reuse open rows
  and expose nothing ("would be mostly hidden with sequential accesses").
* ``tlb misses`` — each sweep of 64 source pages against the 48-entry
  TLB misses (§4.2 lumps this with the precharge overhead as ~21%).
* ``startup latency`` — one exposed DRAM access latency per block
  ("initial load latencies are not hidden").

The canonical matrices fit VIRAM's 13 MB of on-chip DRAM (§3.1 sized the
workload for this).  When they do not, the mapping models §4.6's
prediction — "If the application size is larger than the on-chip DRAM,
the data needs to come from off-chip memory and VIRAM would lose much of
its advantage" — by streaming blocks through the 2-word/cycle off-chip
DMA interface (Table 1), which then dominates the on-chip work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.base import KernelRun
from repro.arch.viram.machine import ViramMachine, padded_pitch
from repro.calibration import Calibration
from repro.kernels.corner_turn import (
    CornerTurnWorkload,
    blocked_corner_turn,
    corner_turn_reference,
)
from repro.kernels.workloads import canonical_corner_turn
from repro.mappings import batch
from repro.mappings.base import functional_match, require, resolve_calibration
from repro.sim.accounting import CycleBreakdown
from repro.units import WORD_BYTES

BLOCK = 16


def run(
    workload: Optional[CornerTurnWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Run the VIRAM corner turn; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(_structure(workload, cal, seed), [cal])[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CornerTurnWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (addresses, activation counts, TLB walk, functional output)."""
    cals = list(calibrations)
    batch.require_uniform_structure("viram", cals)
    return _evaluate(_structure(workload, cals[0], seed), cals)


def _structure(
    workload: Optional[CornerTurnWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    """The calibration-independent pass: build and cost the blocked
    load/store address stream, walk the TLB, compute the functional
    output.  Everything here depends only on the workload, the seed, and
    the structural calibration fields (TLB geometry)."""
    workload = workload or canonical_corner_turn()
    machine = ViramMachine(calibration=cal.viram)
    require(
        workload.rows % BLOCK == 0 and workload.cols % BLOCK == 0,
        f"matrix {workload.rows}x{workload.cols} not divisible by the "
        f"{BLOCK}x{BLOCK} vector-register block",
    )

    src_pitch = padded_pitch(workload.cols, machine)
    dst_pitch = padded_pitch(workload.rows, machine)
    src_bytes = workload.rows * src_pitch * WORD_BYTES
    dst_bytes = workload.cols * dst_pitch * WORD_BYTES
    fits_onchip = (
        src_bytes + dst_bytes <= machine.config.onchip_dram_bytes
    )

    # Block-column-outer order: the destination block-row's DRAM rows and
    # page stay live across the whole sweep of source block-rows.  Each
    # block is one strided column-major load (Tiled2D order="col") then
    # one sequential row-major store (order="row"); the whole interleaved
    # load/store stream is built with broadcasting and costed in a single
    # batched pass rather than one pattern object per block.
    dest_base = workload.rows * src_pitch  # destination follows the source
    n_block_rows = workload.rows // BLOCK
    n_block_cols = workload.cols // BLOCK
    n_blocks = n_block_rows * n_block_cols
    block_words = BLOCK * BLOCK

    bj = np.repeat(np.arange(n_block_cols, dtype=np.int64), n_block_rows)
    bi = np.tile(np.arange(n_block_rows, dtype=np.int64), n_block_cols)
    load_bases = bi * BLOCK * src_pitch + bj * BLOCK
    store_bases = dest_base + bj * BLOCK * dst_pitch + bi * BLOCK
    offs = np.arange(BLOCK, dtype=np.int64)
    load_offsets = (offs[:, None] + src_pitch * offs[None, :]).reshape(-1)
    store_offsets = (dst_pitch * offs[:, None] + offs[None, :]).reshape(-1)

    addresses = np.empty((n_blocks, 2 * block_words), dtype=np.int64)
    addresses[:, :block_words] = load_bases[:, None] + load_offsets[None, :]
    addresses[:, block_words:] = store_bases[:, None] + store_offsets[None, :]
    seg_lengths = np.full(2 * n_blocks, block_words, dtype=np.int64)
    strided = np.zeros(2 * n_blocks, dtype=bool)
    strided[0::2] = True  # loads are strided, stores sequential
    cost = machine.stream_batch(addresses.reshape(-1), seg_lengths, strided)

    matrix = workload.make_matrix(seed)
    output = blocked_corner_turn(matrix, BLOCK)
    ok = functional_match(output, corner_turn_reference(matrix))

    return {
        "workload": workload,
        "machine": machine,
        "fits_onchip": fits_onchip,
        "src_pitch": src_pitch,
        "n_blocks": n_blocks,
        "issue_loads": float(cost.issue_cycles[0::2].sum()),
        "issue_stores": float(cost.issue_cycles[1::2].sum()),
        "issue_cycles": cost.issue_cycles,
        "worst": cost.worst,
        "activations": int(cost.activations.sum()),
        "tlb_misses": machine.tlb.misses,
        "output": output,
        "ok": ok,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration from the shared
    structure; cost terms are vectorized over the leading batch axis."""
    workload = s["workload"]
    machine = s["machine"]
    n_blocks = s["n_blocks"]

    row_cycle = batch.cal_vector(cals, "viram", "dram_row_cycle")
    load_latency = batch.cal_vector(cals, "viram", "exposed_load_latency")
    tlb_miss_cycles = batch.cal_vector(cals, "viram", "tlb_miss_cycles")

    # Exposed row-activation time under the bank-parallel policy, per
    # cell: the same max(0, worst*row_cycle - issue) expression the DRAM
    # applies, broadcast over the batch axis and reduced per row.  The
    # (B, S) intermediate is chunked along B to bound memory.
    worst = s["worst"]
    issue = s["issue_cycles"]
    activation_cycles = np.empty(len(cals), dtype=np.float64)
    for start, stop in batch.batch_rows(len(cals), worst.size):
        activation_cycles[start:stop] = np.maximum(
            0.0, worst[None, :] * row_cycle[start:stop, None] - issue[None, :]
        ).sum(axis=1)

    startup = n_blocks * load_latency
    tlb_stall = s["tlb_misses"] * tlb_miss_cycles

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        breakdown = CycleBreakdown(
            {
                "strided loads": s["issue_loads"],
                "sequential stores": s["issue_stores"],
                "dram row activations": float(activation_cycles[i]),
                "startup latency": float(startup[i]),
            }
        )
        breakdown.charge("tlb misses", float(tlb_stall[i]))

        if not s["fits_onchip"]:
            # §4.6 regime: every word enters and leaves through the
            # off-chip DMA interface (2 words/cycle).  The on-chip work
            # overlaps with the transfer; only its excess over the DMA
            # time is exposed.
            dma_cycles = (
                2.0
                * workload.words
                / machine.config.offchip_dma_words_per_cycle
            )
            onchip_cycles = breakdown.total
            exposed_onchip = max(0.0, onchip_cycles - dma_cycles)
            breakdown = CycleBreakdown(
                {
                    "off-chip dma": dma_cycles,
                    "on-chip (exposed)": exposed_onchip,
                }
            )

        total = breakdown.total
        overhead = breakdown.get("dram row activations") + breakdown.get(
            "tlb misses"
        )
        runs.append(
            KernelRun(
                kernel="corner_turn",
                machine="viram",
                spec=machine.spec,
                breakdown=breakdown,
                ops=workload.op_counts(),
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "block": BLOCK,
                    "src_pitch_words": s["src_pitch"],
                    "fits_onchip": s["fits_onchip"],
                    "dram_activations": s["activations"],
                    "tlb_misses": s["tlb_misses"],
                    # §4.2: "about 21% of the total cycles are overhead
                    # due to DRAM pre-charge cycles ... and TLB misses".
                    "precharge_tlb_fraction": (
                        overhead / total if total else 0.0
                    ),
                    # §4.2: "24% are due to a limitation in strided load
                    # performance imposed by the number of address
                    # generators" (strided loads take twice the
                    # sequential-rate time).
                    "strided_penalty_fraction": (
                        breakdown.get("strided loads") / 2.0 / total
                        if total
                        else 0.0
                    ),
                },
            )
        )
    return runs
