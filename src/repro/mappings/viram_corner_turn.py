"""Corner turn on VIRAM (§3.1).

"Our V[I]RAM corner turn uses a blocking algorithm with a 16 x 16 element
matrix.  Blocking allows the vector registers to be used for temporary
storage between the loads and stores.  We used strided load operations
with padding added to the matrix rows to avoid DRAM bank conflicts.
Initial load latencies are not hidden.  Stores are done sequentially from
the vector registers to the memory."

Cycle accounting (all emergent from the machine model):

* ``strided loads`` — each 16x16 block is read column-major with strided
  vector loads at the 4-word/cycle address-generator limit.
* ``sequential stores`` — the transposed block is written as sixteen
  unit-stride 16-word runs at 8 words/cycle.
* ``dram row activations`` — the strided column walk cycles every bank
  through multiple rows, so each access reopens a row; the exposed excess
  of that activation work over the transfer time is §4.2's "overhead due
  to DRAM pre-charge cycles", while the sequential stores reuse open rows
  and expose nothing ("would be mostly hidden with sequential accesses").
* ``tlb misses`` — each sweep of 64 source pages against the 48-entry
  TLB misses (§4.2 lumps this with the precharge overhead as ~21%).
* ``startup latency`` — one exposed DRAM access latency per block
  ("initial load latencies are not hidden").

The canonical matrices fit VIRAM's 13 MB of on-chip DRAM (§3.1 sized the
workload for this).  When they do not, the mapping models §4.6's
prediction — "If the application size is larger than the on-chip DRAM,
the data needs to come from off-chip memory and VIRAM would lose much of
its advantage" — by streaming blocks through the 2-word/cycle off-chip
DMA interface (Table 1), which then dominates the on-chip work.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.base import KernelRun
from repro.arch.viram.machine import ViramMachine, padded_pitch
from repro.calibration import Calibration
from repro.kernels.corner_turn import (
    CornerTurnWorkload,
    blocked_corner_turn,
    corner_turn_reference,
)
from repro.kernels.workloads import canonical_corner_turn
from repro.mappings.base import functional_match, require, resolve_calibration
from repro.memory.streams import Tiled2D
from repro.sim.accounting import CycleBreakdown
from repro.units import WORD_BYTES

BLOCK = 16


def run(
    workload: Optional[CornerTurnWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Run the VIRAM corner turn; returns a :class:`KernelRun`."""
    workload = workload or canonical_corner_turn()
    cal = resolve_calibration(calibration)
    machine = ViramMachine(calibration=cal.viram)
    require(
        workload.rows % BLOCK == 0 and workload.cols % BLOCK == 0,
        f"matrix {workload.rows}x{workload.cols} not divisible by the "
        f"{BLOCK}x{BLOCK} vector-register block",
    )

    src_pitch = padded_pitch(workload.cols, machine)
    dst_pitch = padded_pitch(workload.rows, machine)
    src_bytes = workload.rows * src_pitch * WORD_BYTES
    dst_bytes = workload.cols * dst_pitch * WORD_BYTES
    fits_onchip = (
        src_bytes + dst_bytes <= machine.config.onchip_dram_bytes
    )

    breakdown_items = {
        "strided loads": 0.0,
        "sequential stores": 0.0,
        "dram row activations": 0.0,
        "startup latency": 0.0,
    }
    activations = 0

    # Block-column-outer order: the destination block-row's DRAM rows and
    # page stay live across the whole sweep of source block-rows.
    dest_base = workload.rows * src_pitch  # destination follows the source
    n_block_rows = workload.rows // BLOCK
    n_block_cols = workload.cols // BLOCK
    for bj in range(n_block_cols):
        for bi in range(n_block_rows):
            load = Tiled2D(
                base=bi * BLOCK * src_pitch + bj * BLOCK,
                rows=BLOCK,
                cols=BLOCK,
                pitch=src_pitch,
                order="col",
            )
            load_cost = machine.load(load, strided=True)
            breakdown_items["strided loads"] += load_cost.issue_cycles
            breakdown_items["dram row activations"] += load_cost.activation_cycles
            breakdown_items["startup latency"] += machine.cal.exposed_load_latency
            activations += load_cost.activations

            store = Tiled2D(
                base=dest_base + bj * BLOCK * dst_pitch + bi * BLOCK,
                rows=BLOCK,
                cols=BLOCK,
                pitch=dst_pitch,
                order="row",
            )
            store_cost = machine.store(store, strided=False)
            breakdown_items["sequential stores"] += store_cost.issue_cycles
            breakdown_items["dram row activations"] += store_cost.activation_cycles
            activations += store_cost.activations

    breakdown = CycleBreakdown(breakdown_items)
    breakdown.charge("tlb misses", machine.tlb.stall_cycles)

    if not fits_onchip:
        # §4.6 regime: every word enters and leaves through the off-chip
        # DMA interface (2 words/cycle).  The on-chip work overlaps with
        # the transfer; only its excess over the DMA time is exposed.
        dma_cycles = (
            2.0 * workload.words / machine.config.offchip_dma_words_per_cycle
        )
        onchip_cycles = breakdown.total
        exposed_onchip = max(0.0, onchip_cycles - dma_cycles)
        breakdown = CycleBreakdown(
            {"off-chip dma": dma_cycles, "on-chip (exposed)": exposed_onchip}
        )

    matrix = workload.make_matrix(seed)
    output = blocked_corner_turn(matrix, BLOCK)
    ok = functional_match(output, corner_turn_reference(matrix))

    ops = workload.op_counts()
    total = breakdown.total
    overhead = breakdown.get("dram row activations") + breakdown.get("tlb misses")
    return KernelRun(
        kernel="corner_turn",
        machine="viram",
        spec=machine.spec,
        breakdown=breakdown,
        ops=ops,
        output=output,
        functional_ok=ok,
        metrics={
            "block": BLOCK,
            "src_pitch_words": src_pitch,
            "fits_onchip": fits_onchip,
            "dram_activations": activations,
            "tlb_misses": machine.tlb.misses,
            # §4.2: "about 21% of the total cycles are overhead due to
            # DRAM pre-charge cycles ... and TLB misses".
            "precharge_tlb_fraction": overhead / total if total else 0.0,
            # §4.2: "24% are due to a limitation in strided load
            # performance imposed by the number of address generators"
            # (strided loads take twice the sequential-rate time).
            "strided_penalty_fraction": (
                breakdown.get("strided loads") / 2.0 / total if total else 0.0
            ),
        },
    )
