"""Corner turn on VIRAM (§3.1).

"Our V[I]RAM corner turn uses a blocking algorithm with a 16 x 16 element
matrix.  Blocking allows the vector registers to be used for temporary
storage between the loads and stores.  We used strided load operations
with padding added to the matrix rows to avoid DRAM bank conflicts.
Initial load latencies are not hidden.  Stores are done sequentially from
the vector registers to the memory."

Cycle accounting (all emergent from the machine model):

* ``strided loads`` — each 16x16 block is read column-major with strided
  vector loads at the 4-word/cycle address-generator limit.
* ``sequential stores`` — the transposed block is written as sixteen
  unit-stride 16-word runs at 8 words/cycle.
* ``dram row activations`` — the strided column walk cycles every bank
  through multiple rows, so each access reopens a row; the exposed excess
  of that activation work over the transfer time is §4.2's "overhead due
  to DRAM pre-charge cycles", while the sequential stores reuse open rows
  and expose nothing ("would be mostly hidden with sequential accesses").
* ``tlb misses`` — each sweep of 64 source pages against the 48-entry
  TLB misses (§4.2 lumps this with the precharge overhead as ~21%).
* ``startup latency`` — one exposed DRAM access latency per block
  ("initial load latencies are not hidden").

The canonical matrices fit VIRAM's 13 MB of on-chip DRAM (§3.1 sized the
workload for this).  When they do not, the mapping models §4.6's
prediction — "If the application size is larger than the on-chip DRAM,
the data needs to come from off-chip memory and VIRAM would lose much of
its advantage" — by streaming blocks through the 2-word/cycle off-chip
DMA interface (Table 1), which then dominates the on-chip work.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arch.base import KernelRun
from repro.arch.viram.machine import ViramMachine, padded_pitch
from repro.calibration import Calibration
from repro.kernels.corner_turn import (
    CornerTurnWorkload,
    blocked_corner_turn,
    corner_turn_reference,
)
from repro.kernels.workloads import canonical_corner_turn
from repro.mappings.base import functional_match, require, resolve_calibration
from repro.sim.accounting import CycleBreakdown
from repro.units import WORD_BYTES

BLOCK = 16


def run(
    workload: Optional[CornerTurnWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Run the VIRAM corner turn; returns a :class:`KernelRun`."""
    workload = workload or canonical_corner_turn()
    cal = resolve_calibration(calibration)
    machine = ViramMachine(calibration=cal.viram)
    require(
        workload.rows % BLOCK == 0 and workload.cols % BLOCK == 0,
        f"matrix {workload.rows}x{workload.cols} not divisible by the "
        f"{BLOCK}x{BLOCK} vector-register block",
    )

    src_pitch = padded_pitch(workload.cols, machine)
    dst_pitch = padded_pitch(workload.rows, machine)
    src_bytes = workload.rows * src_pitch * WORD_BYTES
    dst_bytes = workload.cols * dst_pitch * WORD_BYTES
    fits_onchip = (
        src_bytes + dst_bytes <= machine.config.onchip_dram_bytes
    )

    # Block-column-outer order: the destination block-row's DRAM rows and
    # page stay live across the whole sweep of source block-rows.  Each
    # block is one strided column-major load (Tiled2D order="col") then
    # one sequential row-major store (order="row"); the whole interleaved
    # load/store stream is built with broadcasting and costed in a single
    # batched pass rather than one pattern object per block.
    dest_base = workload.rows * src_pitch  # destination follows the source
    n_block_rows = workload.rows // BLOCK
    n_block_cols = workload.cols // BLOCK
    n_blocks = n_block_rows * n_block_cols
    block_words = BLOCK * BLOCK

    bj = np.repeat(np.arange(n_block_cols, dtype=np.int64), n_block_rows)
    bi = np.tile(np.arange(n_block_rows, dtype=np.int64), n_block_cols)
    load_bases = bi * BLOCK * src_pitch + bj * BLOCK
    store_bases = dest_base + bj * BLOCK * dst_pitch + bi * BLOCK
    offs = np.arange(BLOCK, dtype=np.int64)
    load_offsets = (offs[:, None] + src_pitch * offs[None, :]).reshape(-1)
    store_offsets = (dst_pitch * offs[:, None] + offs[None, :]).reshape(-1)

    addresses = np.empty((n_blocks, 2 * block_words), dtype=np.int64)
    addresses[:, :block_words] = load_bases[:, None] + load_offsets[None, :]
    addresses[:, block_words:] = store_bases[:, None] + store_offsets[None, :]
    seg_lengths = np.full(2 * n_blocks, block_words, dtype=np.int64)
    strided = np.zeros(2 * n_blocks, dtype=bool)
    strided[0::2] = True  # loads are strided, stores sequential
    cost = machine.stream_batch(addresses.reshape(-1), seg_lengths, strided)

    breakdown_items = {
        "strided loads": float(cost.issue_cycles[0::2].sum()),
        "sequential stores": float(cost.issue_cycles[1::2].sum()),
        "dram row activations": float(cost.activation_cycles.sum()),
        "startup latency": n_blocks * machine.cal.exposed_load_latency,
    }
    activations = int(cost.activations.sum())

    breakdown = CycleBreakdown(breakdown_items)
    breakdown.charge("tlb misses", machine.tlb.stall_cycles)

    if not fits_onchip:
        # §4.6 regime: every word enters and leaves through the off-chip
        # DMA interface (2 words/cycle).  The on-chip work overlaps with
        # the transfer; only its excess over the DMA time is exposed.
        dma_cycles = (
            2.0 * workload.words / machine.config.offchip_dma_words_per_cycle
        )
        onchip_cycles = breakdown.total
        exposed_onchip = max(0.0, onchip_cycles - dma_cycles)
        breakdown = CycleBreakdown(
            {"off-chip dma": dma_cycles, "on-chip (exposed)": exposed_onchip}
        )

    matrix = workload.make_matrix(seed)
    output = blocked_corner_turn(matrix, BLOCK)
    ok = functional_match(output, corner_turn_reference(matrix))

    ops = workload.op_counts()
    total = breakdown.total
    overhead = breakdown.get("dram row activations") + breakdown.get("tlb misses")
    return KernelRun(
        kernel="corner_turn",
        machine="viram",
        spec=machine.spec,
        breakdown=breakdown,
        ops=ops,
        output=output,
        functional_ok=ok,
        metrics={
            "block": BLOCK,
            "src_pitch_words": src_pitch,
            "fits_onchip": fits_onchip,
            "dram_activations": activations,
            "tlb_misses": machine.tlb.misses,
            # §4.2: "about 21% of the total cycles are overhead due to
            # DRAM pre-charge cycles ... and TLB misses".
            "precharge_tlb_fraction": overhead / total if total else 0.0,
            # §4.2: "24% are due to a limitation in strided load
            # performance imposed by the number of address generators"
            # (strided loads take twice the sequential-rate time).
            "strided_penalty_fraction": (
                breakdown.get("strided loads") / 2.0 / total if total else 0.0
            ),
        },
    )
