"""Corner turn on the PowerPC G4, scalar and AltiVec (§4.1, §4.5).

§4.5: AltiVec "does not significantly improve performance for the corner
turn, which is limited by main memory bandwidth."

Scalar model — a row-major read / transposed-write loop over a
destination whose row pitch is padded by one cache line (the standard
fix for power-of-two set aliasing, the G4 analogue of §3.1's "padding
added to the matrix rows to avoid DRAM bank conflicts" on VIRAM; an
unpadded 1024-word pitch would alias every destination line into a
single L1 set and thrash both cache levels):

* every source line is touched once (streaming reads: one compulsory
  DRAM miss per 8-word line);
* the write stream revisits each destination line after touching ``cols``
  other lines; whether revisits hit L1, L2, or DRAM depends on that
  reuse distance versus the cache capacities (closed form, validated
  against the trace-driven cache simulator at small sizes in the tests).
  At the canonical 1024x1024 the reuse distance exceeds the 1024-line L1
  (with streaming interference) but fits the 8192-line L2 — so seven of
  eight writes stall on L2 and one of eight on DRAM.

AltiVec model — a 16x16 blocked transpose with vector loads, merge-based
in-register transposition, and vector stores: the same compulsory DRAM
traffic (which is why the gain is small) but no L2 revisit storm and a
quarter the instructions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arch.base import KernelRun
from repro.arch.ppc.machine import PpcMachine
from repro.calibration import Calibration
from repro.kernels.corner_turn import (
    CornerTurnWorkload,
    blocked_corner_turn,
    corner_turn_reference,
)
from repro.kernels.workloads import canonical_corner_turn
from repro.mappings.base import functional_match, resolve_calibration
from repro.sim.accounting import CycleBreakdown

#: Scalar loop body per element: load, store, two address updates, and
#: amortised loop control.
SCALAR_INSTR_PER_ELEMENT = 5.0

ALTIVEC_BLOCK = 16

#: Effective L1 share available to the write stream under read-stream
#: interference (half the capacity).
L1_EFFECTIVE_SHARE = 0.5


def classify_write_revisits(cols: int, machine: PpcMachine) -> str:
    """Which level serves destination-line revisits: 'l1', 'l2', 'dram'."""
    reuse_lines = cols
    if reuse_lines <= machine.config.l1_lines * L1_EFFECTIVE_SHARE:
        return "l1"
    if reuse_lines <= machine.config.l2_lines * L1_EFFECTIVE_SHARE:
        return "l2"
    return "dram"


def scalar_miss_cycles(
    workload: CornerTurnWorkload, machine: PpcMachine
) -> dict:
    """Closed-form stall components of the scalar transpose."""
    line_words = machine.config.l1_line_words
    read_lines = workload.words / line_words
    write_lines = workload.words / line_words
    write_revisits = workload.words - write_lines

    level = classify_write_revisits(workload.cols, machine)
    read_stall = machine.memory_miss_stall(read_lines)
    write_first_stall = machine.memory_miss_stall(write_lines)
    if level == "l1":
        revisit_stall = 0.0
    elif level == "l2":
        revisit_stall = machine.l2_hit_stall(write_revisits)
    else:
        revisit_stall = machine.memory_miss_stall(write_revisits)
    return {
        "read_stall": read_stall,
        "write_first_stall": write_first_stall,
        "write_revisit_stall": revisit_stall,
        "revisit_level": level,
    }


def run_scalar(
    workload: Optional[CornerTurnWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Scalar PPC corner turn; returns a :class:`KernelRun`."""
    workload = workload or canonical_corner_turn()
    cal = resolve_calibration(calibration)
    machine = PpcMachine(calibration=cal.ppc)

    issue = machine.issue_cycles(workload.words * SCALAR_INSTR_PER_ELEMENT)
    stalls = scalar_miss_cycles(workload, machine)

    breakdown = CycleBreakdown(
        {
            "issue": issue,
            "read misses": stalls["read_stall"],
            "write first-touch misses": stalls["write_first_stall"],
            "write revisit stalls": stalls["write_revisit_stall"],
        }
    )

    matrix = workload.make_matrix(seed)
    output = corner_turn_reference(matrix)
    total = breakdown.total
    return KernelRun(
        kernel="corner_turn",
        machine="ppc",
        spec=machine.spec,
        breakdown=breakdown,
        ops=workload.op_counts(),
        output=output,
        functional_ok=True,
        metrics={
            "write_revisit_level": stalls["revisit_level"],
            "memory_bound_fraction": (total - issue) / total if total else 0.0,
        },
    )


def run_altivec(
    workload: Optional[CornerTurnWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """AltiVec (blocked) PPC corner turn; returns a :class:`KernelRun`."""
    workload = workload or canonical_corner_turn()
    cal = resolve_calibration(calibration)
    machine = PpcMachine(calibration=cal.ppc)
    block = ALTIVEC_BLOCK
    if workload.rows % block or workload.cols % block:
        # Fall back to scalar traversal for odd shapes.
        return run_scalar(workload, calibration, seed)

    n_blocks = (workload.rows // block) * (workload.cols // block)
    width = machine.config.altivec_width
    # Per block: vector loads, merge-network transpose, vector stores.
    vec_loads = block * (block // width)
    sub_transposes = (block // width) ** 2
    vec_perms = sub_transposes * 2 * width  # 8 merges per 4x4 transpose
    vec_stores = block * (block // width)
    vec_ops = vec_loads + vec_perms + vec_stores
    scalar_addr = block * 4.0

    issue = n_blocks * (
        machine.vector_issue_cycles(vec_ops)
        + machine.issue_cycles(scalar_addr)
    )

    # Blocked traversal: every line is touched within one block only —
    # compulsory DRAM misses on both streams, no revisit storm.
    line_words = machine.config.l1_line_words
    read_stall = machine.memory_miss_stall(workload.words / line_words)
    write_stall = machine.memory_miss_stall(workload.words / line_words)

    breakdown = CycleBreakdown(
        {
            "issue": issue,
            "read misses": read_stall,
            "write first-touch misses": write_stall,
        }
    )

    matrix = workload.make_matrix(seed)
    output = blocked_corner_turn(matrix, block)
    ok = functional_match(output, corner_turn_reference(matrix))
    total = breakdown.total
    return KernelRun(
        kernel="corner_turn",
        machine="altivec",
        spec=machine.altivec_spec,
        breakdown=breakdown,
        ops=workload.op_counts(),
        output=output,
        functional_ok=ok,
        metrics={
            "block": block,
            "memory_bound_fraction": (total - issue) / total if total else 0.0,
        },
    )
