"""Corner turn on the PowerPC G4, scalar and AltiVec (§4.1, §4.5).

§4.5: AltiVec "does not significantly improve performance for the corner
turn, which is limited by main memory bandwidth."

Scalar model — a row-major read / transposed-write loop over a
destination whose row pitch is padded by one cache line (the standard
fix for power-of-two set aliasing, the G4 analogue of §3.1's "padding
added to the matrix rows to avoid DRAM bank conflicts" on VIRAM; an
unpadded 1024-word pitch would alias every destination line into a
single L1 set and thrash both cache levels):

* every source line is touched once (streaming reads: one compulsory
  DRAM miss per 8-word line);
* the write stream revisits each destination line after touching ``cols``
  other lines; whether revisits hit L1, L2, or DRAM depends on that
  reuse distance versus the cache capacities (closed form, validated
  against the trace-driven cache simulator at small sizes in the tests).
  At the canonical 1024x1024 the reuse distance exceeds the 1024-line L1
  (with streaming interference) but fits the 8192-line L2 — so seven of
  eight writes stall on L2 and one of eight on DRAM.

AltiVec model — a 16x16 blocked transpose with vector loads, merge-based
in-register transposition, and vector stores: the same compulsory DRAM
traffic (which is why the gain is small) but no L2 revisit storm and a
quarter the instructions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.base import KernelRun
from repro.arch.ppc.machine import PpcMachine
from repro.calibration import Calibration
from repro.kernels.corner_turn import (
    CornerTurnWorkload,
    blocked_corner_turn,
    corner_turn_reference,
)
from repro.kernels.workloads import canonical_corner_turn
from repro.mappings import batch
from repro.mappings.base import functional_match, resolve_calibration
from repro.sim.accounting import CycleBreakdown

#: Scalar loop body per element: load, store, two address updates, and
#: amortised loop control.
SCALAR_INSTR_PER_ELEMENT = 5.0

ALTIVEC_BLOCK = 16

#: Effective L1 share available to the write stream under read-stream
#: interference (half the capacity).
L1_EFFECTIVE_SHARE = 0.5


def classify_write_revisits(cols: int, machine: PpcMachine) -> str:
    """Which level serves destination-line revisits: 'l1', 'l2', 'dram'."""
    reuse_lines = cols
    if reuse_lines <= machine.config.l1_lines * L1_EFFECTIVE_SHARE:
        return "l1"
    if reuse_lines <= machine.config.l2_lines * L1_EFFECTIVE_SHARE:
        return "l2"
    return "dram"


def scalar_miss_cycles(
    workload: CornerTurnWorkload, machine: PpcMachine
) -> dict:
    """Closed-form stall components of the scalar transpose."""
    line_words = machine.config.l1_line_words
    read_lines = workload.words / line_words
    write_lines = workload.words / line_words
    write_revisits = workload.words - write_lines

    level = classify_write_revisits(workload.cols, machine)
    read_stall = machine.memory_miss_stall(read_lines)
    write_first_stall = machine.memory_miss_stall(write_lines)
    if level == "l1":
        revisit_stall = 0.0
    elif level == "l2":
        revisit_stall = machine.l2_hit_stall(write_revisits)
    else:
        revisit_stall = machine.memory_miss_stall(write_revisits)
    return {
        "read_stall": read_stall,
        "write_first_stall": write_first_stall,
        "write_revisit_stall": revisit_stall,
        "revisit_level": level,
    }


def run_scalar(
    workload: Optional[CornerTurnWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Scalar PPC corner turn; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate_scalar(_structure_scalar(workload, cal, seed), [cal])[0]


def run_scalar_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CornerTurnWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One scalar-PPC :class:`KernelRun` per calibration, sharing one
    structure pass (miss census, revisit classification, output)."""
    cals = list(calibrations)
    batch.require_uniform_structure("ppc", cals)
    return _evaluate_scalar(_structure_scalar(workload, cals[0], seed), cals)


def _structure_scalar(
    workload: Optional[CornerTurnWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    """The calibration-independent pass: line counts, the revisit-level
    classification (cache geometry, not latency constants), issue time,
    and the transposed output."""
    workload = workload or canonical_corner_turn()
    machine = PpcMachine(calibration=cal.ppc)

    issue = machine.issue_cycles(workload.words * SCALAR_INSTR_PER_ELEMENT)

    line_words = machine.config.l1_line_words
    read_lines = workload.words / line_words
    write_lines = workload.words / line_words
    write_revisits = workload.words - write_lines
    level = classify_write_revisits(workload.cols, machine)

    matrix = workload.make_matrix(seed)
    output = corner_turn_reference(matrix)

    return {
        "workload": workload,
        "machine": machine,
        "issue": issue,
        "read_lines": read_lines,
        "write_lines": write_lines,
        "write_revisits": write_revisits,
        "level": level,
        "output": output,
    }


def _evaluate_scalar(
    s: Dict, cals: Sequence[Calibration]
) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration: the miss counts are
    fixed by the structure, only the per-miss latencies vary."""
    workload = s["workload"]
    machine = s["machine"]
    issue = s["issue"]

    l2_hit = batch.cal_vector(cals, "ppc", "l2_hit_cycles")
    dram = batch.cal_vector(cals, "ppc", "dram_latency_cycles")
    miss_cost = l2_hit + dram

    read_stall = s["read_lines"] * miss_cost
    write_first_stall = s["write_lines"] * miss_cost
    if s["level"] == "l1":
        revisit_stall = np.zeros(len(cals), dtype=np.float64)
    elif s["level"] == "l2":
        revisit_stall = s["write_revisits"] * l2_hit
    else:
        revisit_stall = s["write_revisits"] * miss_cost

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        breakdown = CycleBreakdown(
            {
                "issue": issue,
                "read misses": float(read_stall[i]),
                "write first-touch misses": float(write_first_stall[i]),
                "write revisit stalls": float(revisit_stall[i]),
            }
        )
        total = breakdown.total
        runs.append(
            KernelRun(
                kernel="corner_turn",
                machine="ppc",
                spec=machine.spec,
                breakdown=breakdown,
                ops=workload.op_counts(),
                output=s["output"],
                functional_ok=True,
                metrics={
                    "write_revisit_level": s["level"],
                    "memory_bound_fraction": (
                        (total - issue) / total if total else 0.0
                    ),
                },
            )
        )
    return runs


def run_altivec(
    workload: Optional[CornerTurnWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """AltiVec (blocked) PPC corner turn; returns a :class:`KernelRun`."""
    workload = workload or canonical_corner_turn()
    block = ALTIVEC_BLOCK
    if workload.rows % block or workload.cols % block:
        # Fall back to scalar traversal for odd shapes.
        return run_scalar(workload, calibration, seed)
    cal = resolve_calibration(calibration)
    return _evaluate_altivec(
        _structure_altivec(workload, cal, seed), [cal]
    )[0]


def run_altivec_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CornerTurnWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One AltiVec :class:`KernelRun` per calibration, sharing one
    structure pass (issue census, compulsory miss counts, output)."""
    workload = workload or canonical_corner_turn()
    cals = list(calibrations)
    batch.require_uniform_structure("ppc", cals)
    block = ALTIVEC_BLOCK
    if workload.rows % block or workload.cols % block:
        # Same odd-shape fallback as the per-cell entry point.
        return _evaluate_scalar(
            _structure_scalar(workload, cals[0], seed), cals
        )
    return _evaluate_altivec(
        _structure_altivec(workload, cals[0], seed), cals
    )


def _structure_altivec(
    workload: CornerTurnWorkload,
    cal: Calibration,
    seed: int,
) -> Dict:
    """The calibration-independent pass for the blocked AltiVec
    traversal: issue time, compulsory line counts, functional output."""
    machine = PpcMachine(calibration=cal.ppc)
    block = ALTIVEC_BLOCK

    n_blocks = (workload.rows // block) * (workload.cols // block)
    width = machine.config.altivec_width
    # Per block: vector loads, merge-network transpose, vector stores.
    vec_loads = block * (block // width)
    sub_transposes = (block // width) ** 2
    vec_perms = sub_transposes * 2 * width  # 8 merges per 4x4 transpose
    vec_stores = block * (block // width)
    vec_ops = vec_loads + vec_perms + vec_stores
    scalar_addr = block * 4.0

    issue = n_blocks * (
        machine.vector_issue_cycles(vec_ops)
        + machine.issue_cycles(scalar_addr)
    )

    # Blocked traversal: every line is touched within one block only —
    # compulsory DRAM misses on both streams, no revisit storm.
    line_words = machine.config.l1_line_words

    matrix = workload.make_matrix(seed)
    output = blocked_corner_turn(matrix, block)
    ok = functional_match(output, corner_turn_reference(matrix))

    return {
        "workload": workload,
        "machine": machine,
        "block": block,
        "issue": issue,
        "miss_lines": workload.words / line_words,
        "output": output,
        "ok": ok,
    }


def _evaluate_altivec(
    s: Dict, cals: Sequence[Calibration]
) -> List[KernelRun]:
    """Assemble one AltiVec cycle ledger per calibration."""
    workload = s["workload"]
    machine = s["machine"]
    issue = s["issue"]

    l2_hit = batch.cal_vector(cals, "ppc", "l2_hit_cycles")
    dram = batch.cal_vector(cals, "ppc", "dram_latency_cycles")
    miss_stall = s["miss_lines"] * (l2_hit + dram)

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        breakdown = CycleBreakdown(
            {
                "issue": issue,
                "read misses": float(miss_stall[i]),
                "write first-touch misses": float(miss_stall[i]),
            }
        )
        total = breakdown.total
        runs.append(
            KernelRun(
                kernel="corner_turn",
                machine="altivec",
                spec=machine.altivec_spec,
                breakdown=breakdown,
                ops=workload.op_counts(),
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "block": s["block"],
                    "memory_bound_fraction": (
                        (total - issue) / total if total else 0.0
                    ),
                },
            )
        )
    return runs
