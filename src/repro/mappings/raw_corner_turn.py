"""Corner turn on Raw (§3.1, §4.2).

"Our corner turn on Raw uses one load and one store operation for each
DRAM-to-DRAM transfer.  The algorithm ... was developed to ensure that
all 16 Raw tiles are doing a load or store during as many cycles as
possible and to avoid bottlenecks in the static networks and data ports.
The algorithm operates on 64x64 word blocks that fit in a single local
tile memory."  §4.2: "16 instructions per cycle are executed on the Raw
tiles, and the static network and DRAM ports are not a bottleneck.  The
performance we achieved is nearly identical to the maximum performance
predicted by the instruction issue rate.  Memory latency is fully hidden
(except for negligible start-up costs)."

Model: the 256 blocks are distributed over the 16 tiles; per block a tile
issues one load and one store per word (8192 instructions) plus the
calibrated per-row loop/address overhead, all at one instruction per
cycle.  The mapping then *verifies* the paper's non-bottleneck claims:
aggregate port traffic and worst-link static-network load are checked
against the achieved cycle count, and the 16 KB block allocation is made
in a tile scratchpad.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.base import KernelRun
from repro.arch.raw.machine import RawMachine
from repro.arch.raw.network import port_coords, transfer_latency
from repro.calibration import Calibration
from repro.kernels.corner_turn import (
    CornerTurnWorkload,
    blocked_corner_turn,
    corner_turn_reference,
)
from repro.kernels.workloads import canonical_corner_turn
from repro.mappings import batch
from repro.mappings.base import functional_match, require, resolve_calibration
from repro.sim.accounting import CycleBreakdown
from repro.units import WORD_BYTES

BLOCK = 64


def run(
    workload: Optional[CornerTurnWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Run the Raw corner turn; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(_structure(workload, cal, seed), [cal])[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CornerTurnWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (block distribution, network flows, functional output)."""
    cals = list(calibrations)
    batch.require_uniform_structure("raw", cals)
    return _evaluate(_structure(workload, cals[0], seed), cals)


def _structure(
    workload: Optional[CornerTurnWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    """The calibration-independent pass: block distribution, capacity
    allocation, port/network flow accounting, functional output."""
    workload = workload or canonical_corner_turn()
    machine = RawMachine(calibration=cal.raw)
    require(
        workload.rows % BLOCK == 0 and workload.cols % BLOCK == 0,
        f"matrix {workload.rows}x{workload.cols} not divisible by the "
        f"{BLOCK}x{BLOCK} tile block",
    )

    # §3.1's sizing: the block must fit one tile memory (hard constraint);
    # whether the matrix exceeds the chip's aggregate local memory is
    # recorded as a metric so small test workloads still run.
    block_bytes = BLOCK * BLOCK * WORD_BYTES
    machine.tile_memories[0].allocate("corner-turn-block", block_bytes)
    exceeds_local = (
        workload.nbytes > machine.config.aggregate_local_memory_bytes
    )

    n_blocks = (workload.rows // BLOCK) * (workload.cols // BLOCK)
    per_tile_blocks = machine.distribute(n_blocks)
    block_words = BLOCK * BLOCK

    # Per block: one load + one store instruction per word, plus
    # loop/address overhead per block row processed (load rows + store
    # rows).
    loadstore_per_block = 2 * block_words
    overhead_per_block = 2 * BLOCK * machine.cal.block_loop_overhead_per_row
    machine.tile_cycles(loadstore_per_block + overhead_per_block)

    busiest = max(per_tile_blocks)
    loadstore = busiest * machine.tile_cycles(loadstore_per_block)
    machine.tile_cycles(overhead_per_block)  # emits the overhead span

    # Negligible per-block start-up: static-network fill from the tile's
    # peripheral port.
    ports = port_coords(machine.config)
    fill = transfer_latency(machine.config, ports[0], ports[0])
    startup = busiest * max(fill, machine.config.static_nearest_latency)

    total_words = 2.0 * workload.words
    port_bound = machine.offchip_time(total_words)
    for tile_idx, coord in enumerate(ports[: machine.config.tiles]):
        machine.static_network.add_flow(
            coord, coord, per_tile_blocks[tile_idx] * 2 * block_words
        )

    matrix = workload.make_matrix(seed)
    output = blocked_corner_turn(matrix, BLOCK)
    ok = functional_match(output, corner_turn_reference(matrix))

    return {
        "workload": workload,
        "machine": machine,
        "exceeds_local": exceeds_local,
        "n_blocks": n_blocks,
        "per_tile_blocks": per_tile_blocks,
        "loadstore_per_block": loadstore_per_block,
        "loadstore": loadstore,
        "busiest": busiest,
        "startup": startup,
        "port_bound": port_bound,
        "output": output,
        "ok": ok,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration: only the per-row loop
    overhead constant varies; the §4.2 non-bottleneck claims are
    re-verified against each cell's achieved time."""
    workload = s["workload"]
    machine = s["machine"]
    per_tile_blocks = s["per_tile_blocks"]
    busiest = s["busiest"]

    loop_overhead = batch.cal_vector(
        cals, "raw", "block_loop_overhead_per_row"
    )
    overhead_per_block = 2 * BLOCK * loop_overhead
    overhead = busiest * overhead_per_block

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        breakdown = CycleBreakdown(
            {
                "load/store issue": s["loadstore"],
                "loop overhead": float(overhead[i]),
                "startup": s["startup"],
            }
        )
        total = breakdown.total

        # Verify the §4.2 non-bottleneck claims against the achieved time.
        require(
            s["port_bound"] <= total,
            "DRAM ports would bottleneck the Raw corner turn, "
            "contradicting §4.2",
        )
        require(
            machine.static_network.check_feasible(total),
            "static network would bottleneck the Raw corner turn, "
            "contradicting §4.2",
        )

        runs.append(
            KernelRun(
                kernel="corner_turn",
                machine="raw",
                spec=machine.spec,
                breakdown=breakdown,
                ops=workload.op_counts(),
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "block": BLOCK,
                    "blocks": s["n_blocks"],
                    "matrix_exceeds_local_memory": s["exceeds_local"],
                    # §4.2: "16 instructions per cycle are executed".
                    "instructions_per_cycle": (
                        sum(per_tile_blocks)
                        * (s["loadstore_per_block"] + float(overhead_per_block[i]))
                        / total
                        if total
                        else 0.0
                    ),
                    "issue_bound_cycles": sum(per_tile_blocks)
                    * s["loadstore_per_block"]
                    / machine.config.tiles,
                    "port_utilization": (
                        s["port_bound"] / total if total else 0.0
                    ),
                },
            )
        )
    return runs
