"""Kernel -> machine mappings (§3's implementations).

Each module ``<machine>_<kernel>`` compiles one kernel into the operation
and memory-access streams the paper describes for that machine, runs them
through the machine model, produces the *functional* output (checked
against an independent oracle), and returns a
:class:`repro.arch.base.KernelRun` whose cycle breakdown mirrors the
paper's §4 analysis categories.

Use :func:`repro.mappings.registry.run` (or :func:`repro.run_kernel`) to
invoke a mapping by name.
"""

from repro.mappings.registry import KERNELS, MACHINES, available, run

__all__ = ["KERNELS", "MACHINES", "available", "run"]
