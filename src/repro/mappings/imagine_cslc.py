"""CSLC on Imagine (§3.2, §4.3).

"Imagine has the best performance of the three architectures on CSLC ...
it is a computation-intensive kernel for which the working sets fit in
the stream register files. ... Performance is reduced by 30% because
inter-cluster communication is used to perform parallel FFTs. ... the
small size of the FFT reduces the amount of software pipelining and
increases start-up overheads."

Model:

* ``kernel`` — each 128-point transform is parallelised across the eight
  clusters (16 points per cluster); per stage, the exact arithmetic
  census is resource-bound VLIW-scheduled on the 3 adders / 2 multipliers
  per cluster, and stages whose butterfly span reaches across the
  16-point cluster partitions pay inter-cluster word transfers at the
  calibrated exposure (the ~30% parallel-FFT penalty).  The weight
  application is scheduled the same way and fused with the first IFFT
  kernel.
* ``startup`` — one software-pipeline prologue per kernel invocation
  (one invocation per transform): with 128-point streams this dominates
  utilization, which is why achieved FFT ALU utilization lands far below
  media-kernel levels (§4.3's 25.5% / 30.6% discussion).
* ``memory (exposed)`` — the sub-band loads, weight loads, and result
  stores run as an explicit double-buffered host stream program
  (:mod:`repro.arch.imagine.stream_program`); hiding them under kernel
  execution is an outcome of the schedule, and only the pipeline ramp
  remains exposed.

The ``independent_ffts`` option reproduces §4.3's "alternative
implementation ... would execute independent FFTs in parallel to
eliminate inter-cluster communication overhead".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.base import KernelRun
from repro.arch.imagine.cluster import ClusterOpMix, cluster_schedule_cycles
from repro.arch.imagine.machine import ImagineMachine
from repro.arch.imagine.stream_program import (
    StreamProgram,
    execute_measured,
    reschedule,
)
from repro.calibration import Calibration
from repro.kernels.cslc import CSLCWorkload, cslc_oracle, cslc_reference
from repro.kernels.fft import FFTPlan
from repro.kernels.opcount import COMPLEX_ADD_FLOPS, COMPLEX_MUL_ADDS, COMPLEX_MUL_MULS
from repro.kernels.signal import make_jammed_channels
from repro.kernels.workloads import canonical_cslc
from repro.mappings import batch
from repro.mappings.base import functional_match, resolve_calibration
from repro.memory.streams import Sequential
from repro.sim.accounting import CycleBreakdown
from repro.units import WORD_BYTES


def _transform_mix(
    plan: FFTPlan, machine: ImagineMachine, parallel: bool
) -> ClusterOpMix:
    """Per-cluster op mix of one transform parallelised over the clusters.

    With ``parallel`` the 128 points are block-distributed 16 per cluster
    and stages whose butterfly span crosses the partition move their
    remote operands through the communication units; without it (the
    §4.3 alternative), independent transforms run on each cluster and no
    communication is needed (the arithmetic per cluster is unchanged in
    steady state because eight transforms then finish in the time one
    parallel transform's eight-fold work would).
    """
    points_per_cluster = plan.n // machine.config.clusters
    adds = 0.0
    muls = 0.0
    comms = 0.0
    for stage in plan.stages:
        adds += stage.core_adds * COMPLEX_ADD_FLOPS
        adds += stage.nontrivial_twiddles * COMPLEX_MUL_ADDS
        muls += stage.nontrivial_twiddles * COMPLEX_MUL_MULS
        if parallel and stage.span >= points_per_cluster:
            # Each butterfly pulls (radix - 1) remote complex operands.
            comms += stage.butterflies * (stage.radix - 1) * 2
    clusters = machine.config.clusters
    return ClusterOpMix(
        adds=adds / clusters, muls=muls / clusters, comms=comms / clusters
    )


def _weight_mix(workload: CSLCWorkload, machine: ImagineMachine) -> ClusterOpMix:
    """Per-cluster op mix of one sub-band's weight application."""
    per_bin_muls = workload.n_aux * 4
    per_bin_adds = workload.n_aux * 2 + workload.n_aux * 2  # cmul adds + csub
    bins = workload.subband_len
    clusters = machine.config.clusters
    return ClusterOpMix(
        adds=workload.n_mains * bins * per_bin_adds / clusters,
        muls=workload.n_mains * bins * per_bin_muls / clusters,
    )


def _arith(mix: ClusterOpMix) -> ClusterOpMix:
    """The arithmetic-only part of ``mix`` (what the VLIW bound sees)."""
    return ClusterOpMix(adds=mix.adds, muls=mix.muls, divs=mix.divs)


def run(
    workload: Optional[CSLCWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
    independent_ffts: bool = False,
) -> KernelRun:
    """Run the Imagine CSLC; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(
        _structure(workload, cal, seed, independent_ffts), [cal]
    )[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CSLCWorkload] = None,
    seed: int = 0,
    independent_ffts: bool = False,
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (op mixes, stream program, functional transforms); each cell replays
    the schedule with its own timing constants."""
    cals = list(calibrations)
    batch.require_uniform_structure("imagine", cals)
    return _evaluate(
        _structure(workload, cals[0], seed, independent_ffts), cals
    )


def _structure(
    workload: Optional[CSLCWorkload],
    cal: Calibration,
    seed: int,
    independent_ffts: bool,
) -> Dict:
    """The calibration-independent pass: cluster op mixes, the
    software-pipelined host stream program, one measured execution, and
    the functional result."""
    workload = workload or canonical_cslc()
    machine = ImagineMachine(calibration=cal.imagine)
    plan = FFTPlan(workload.subband_len)  # radix-4 stages + one radix-2

    # Working set per sub-band must fit the SRF (double-buffered).
    subband_words = (
        (workload.n_channels + workload.n_mains) * 2 * workload.subband_len
    )
    weight_words = workload.n_mains * workload.n_aux * 2 * workload.subband_len
    machine.srf.allocate(
        "cslc-subband", 2 * (subband_words + weight_words) * WORD_BYTES
    )

    mix = _transform_mix(plan, machine, parallel=not independent_ffts)
    kernel_per_transform = machine.kernel_cycles(mix)
    weight_mix = _weight_mix(workload, machine)
    weight_per_subband = machine.kernel_cycles(weight_mix)

    invocations = workload.transforms
    machine.kernel_startups(invocations)  # emits the prologue span
    startup_per_kernel = machine.kernel_startups(1)

    # Host stream program, emitted in software-pipelined order: the next
    # sub-band's loads are issued before the current sub-band's kernels
    # (the stream scoreboard lets them start while kernels run), one
    # kernel per transform (the weight application fused into the first
    # IFFT kernel), stores after the kernels.  Double buffering in the
    # SRF lets sub-band s+1's loads run two kernels back (its buffer
    # pair frees when sub-band s-1 completes).
    transforms_per_subband = workload.n_channels + workload.n_mains
    subband_words = 2 * workload.subband_len
    program = StreamProgram()
    in_base = 0
    out_base = 10 * workload.n_subbands * subband_words  # outputs follow

    def emit_loads(s: int) -> None:
        nonlocal in_base
        buffer_free = (
            (f"k{s - 2}.{transforms_per_subband - 1}",) if s >= 2 else ()
        )
        for c in range(workload.n_channels):
            program.load(
                f"load{s}.{c}",
                Sequential(in_base, subband_words),
                deps=buffer_free,
            )
            in_base += subband_words

    weighted_kernels = []
    plain_kernels = []
    emit_loads(0)
    for s in range(workload.n_subbands):
        if s + 1 < workload.n_subbands:
            emit_loads(s + 1)  # prefetch under this sub-band's kernels
        prev = tuple(
            f"load{s}.{c}" for c in range(workload.n_channels)
        )
        for t in range(transforms_per_subband):
            cycles = kernel_per_transform + startup_per_kernel
            name = f"k{s}.{t}"
            if t == workload.n_channels:  # first IFFT carries the weights
                cycles += weight_per_subband
                weighted_kernels.append(name)
            else:
                plain_kernels.append(name)
            program.kernel(name, cycles, deps=prev)
            prev = (name,)
        for m in range(workload.n_mains):
            program.store(
                f"store{s}.{m}",
                Sequential(out_base, subband_words),
                deps=prev,
            )
            out_base += subband_words
    _, op_costs = execute_measured(program, machine)

    channels = make_jammed_channels(
        workload.samples, workload.n_mains, workload.n_aux, seed=seed
    )
    result = cslc_reference(channels, workload, plan=plan)
    oracle = cslc_oracle(channels, workload, result.weights)
    ok = functional_match(result.outputs, oracle)

    free_mix = _transform_mix(plan, machine, parallel=False)
    machine.kernel_cycles(free_mix)  # emits the comm-free what-if span

    return {
        "workload": workload,
        "machine": machine,
        "independent_ffts": independent_ffts,
        "op_costs": op_costs,
        "mix": mix,
        "weight_mix": weight_mix,
        "free_mix": free_mix,
        "invocations": invocations,
        "plain_kernels": plain_kernels,
        "weighted_kernels": weighted_kernels,
        "fft_flops": plan.flops() * workload.transforms,
        "ops": workload.op_counts(plan),
        "output": result.outputs,
        "ok": ok,
        "cancellation_db": result.cancellation_db,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration: kernel, startup, and
    stream timings are rebuilt from each cell's constants and the
    dependency schedule is replayed."""
    workload = s["workload"]
    machine = s["machine"]
    mix = s["mix"]
    weight_mix = s["weight_mix"]
    free_mix = s["free_mix"]
    invocations = s["invocations"]

    row_cycle = batch.cal_vector(cals, "imagine", "dram_row_cycle")
    gather_derate = batch.cal_vector(cals, "imagine", "gather_derate")
    inefficiency = batch.cal_vector(
        cals, "imagine", "cluster_schedule_inefficiency"
    )
    comm_exposure = batch.cal_vector(cals, "imagine", "comm_exposure")
    kernel_startup = batch.cal_vector(cals, "imagine", "kernel_startup")

    alus = machine.config.total_alus
    alus_no_div = alus - machine.config.clusters  # exclude the dividers

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        ineff = float(inefficiency[i])
        ce = float(comm_exposure[i])
        ks = float(kernel_startup[i])
        kernel_per_transform = (
            cluster_schedule_cycles(
                _arith(mix), machine.config, inefficiency=ineff
            )
            + mix.comms * ce
        )
        weight_per_subband = (
            cluster_schedule_cycles(
                _arith(weight_mix), machine.config, inefficiency=ineff
            )
            + weight_mix.comms * ce
        )
        fft_kernel = workload.transforms * kernel_per_transform
        weight_kernel = workload.n_subbands * weight_per_subband
        kernel = fft_kernel + weight_kernel
        startup = invocations * ks
        startup_per_kernel = 1 * ks

        kernel_cycles = {}
        for name in s["plain_kernels"]:
            kernel_cycles[name] = kernel_per_transform + startup_per_kernel
        for name in s["weighted_kernels"]:
            kernel_cycles[name] = (
                kernel_per_transform + startup_per_kernel
            ) + weight_per_subband
        schedule = reschedule(
            s["op_costs"],
            machine,
            row_cycle=float(row_cycle[i]),
            gather_derate=float(gather_derate[i]),
            kernel_cycles=kernel_cycles,
        )

        exposed_memory = max(0.0, schedule.makespan - (kernel + startup))
        breakdown = CycleBreakdown(
            {
                "kernel": kernel,
                "startup": startup,
                "memory (exposed)": exposed_memory,
            }
        )
        memory_wall = schedule.memory_busy

        ops = s["ops"]
        total = breakdown.total
        fft_flops = s["fft_flops"]
        fft_time = fft_kernel + startup
        comm_free = workload.transforms * (
            cluster_schedule_cycles(
                _arith(free_mix), machine.config, inefficiency=ineff
            )
            + free_mix.comms * ce
        )
        runs.append(
            KernelRun(
                kernel="cslc",
                machine="imagine",
                spec=machine.spec,
                breakdown=breakdown,
                ops=ops,
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "cancellation_db": s["cancellation_db"],
                    "independent_ffts": s["independent_ffts"],
                    # §4.3: "about 10 useful operations per cycle".
                    "ops_per_cycle": ops.flops / total if total else 0.0,
                    # §4.3: FFT ALU utilization 25.5% (30.6% excluding
                    # dividers).
                    "fft_alu_utilization": (
                        fft_flops / (alus * fft_time) if fft_time else 0.0
                    ),
                    "fft_alu_utilization_no_div": (
                        fft_flops / (alus_no_div * fft_time)
                        if fft_time
                        else 0.0
                    ),
                    # §4.3: ~30% reduction from inter-cluster communication.
                    "comm_penalty_fraction": (
                        (fft_kernel - comm_free) / fft_kernel
                        if fft_kernel
                        else 0.0
                    ),
                    "memory_hidden_cycles": memory_wall - exposed_memory,
                },
            )
        )
    return runs
