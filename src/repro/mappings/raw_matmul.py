"""Matrix multiplication on Raw (extension; §2.3's cited results).

Reproduces the shape of the Raw results the paper cites: "speedup of up
to 12 relative to single-tile performance on ILP benchmarks.  Speedups
greater than 16 can be achieved on streaming benchmarks when compared to
a single-issue load/store RISC architecture because of a tile's ability
to operate on data directly from the networks."

Three execution modes share one blocked SUMMA-style algorithm (C tiled
4x4 over the mesh; A row-panels and B column-panels broadcast per step):

* ``single`` — the whole product on one tile with the load/store inner
  loop: the baseline of the citation.
* ``mimd`` — 16 tiles, load/store inner loop, per-step panel transfers
  exposed at the tile's network link plus a per-step synchronisation
  latency: the "ILP/MIMD" regime whose speedup saturates *below* 16.
* ``stream`` — 16 tiles with B streamed from the static network: the
  per-MAC load disappears, so the speedup against the load/store
  single-tile baseline *exceeds* 16 — the superlinear effect §2.3
  explains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.base import KernelRun
from repro.arch.raw.machine import RawMachine
from repro.arch.raw.network import transfer_latency
from repro.calibration import Calibration
from repro.errors import MappingError
from repro.kernels.matmul import (
    MatmulWorkload,
    blocked_matmul,
    matmul_reference,
)
from repro.mappings import batch
from repro.mappings.base import functional_match, resolve_calibration
from repro.sim.accounting import CycleBreakdown
from repro.units import WORD_BYTES

MODES = ("single", "mimd", "stream")


def run(
    workload: Optional[MatmulWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
    mode: str = "mimd",
) -> KernelRun:
    """Run the Raw matmul in one of :data:`MODES`."""
    cal = resolve_calibration(calibration)
    return _evaluate(_structure(workload, cal, seed, mode), [cal])[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[MatmulWorkload] = None,
    seed: int = 0,
    mode: str = "mimd",
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (instruction census, panel schedule, functional product)."""
    cals = list(calibrations)
    batch.require_uniform_structure("raw", cals)
    return _evaluate(_structure(workload, cals[0], seed, mode), cals)


def _structure(
    workload: Optional[MatmulWorkload],
    cal: Calibration,
    seed: int,
    mode: str,
) -> Dict:
    """The calibration-independent pass: censuses, busy time, the
    communication schedule, and the blocked product."""
    workload = workload or MatmulWorkload()
    machine = RawMachine(calibration=cal.raw)
    if mode not in MODES:
        raise MappingError(f"mode must be one of {MODES}, got {mode!r}")

    grid = machine.config.mesh_rows  # 4x4 C-tile grid
    if workload.n % grid or workload.m % grid:
        raise MappingError(
            f"matmul {workload.n}x{workload.m} outputs not divisible by "
            f"the {grid}x{grid} tile grid"
        )

    census = (
        workload.streamed_census()
        if mode == "stream"
        else workload.loadstore_census()
    )
    total_instr = census.total

    if mode == "single":
        busy = machine.tile_cycles(total_instr)
        # The whole working set cannot stay in one tile's 32 KB.
        working_bytes = WORD_BYTES * (
            workload.n * workload.k
            + workload.k * workload.m
            + workload.n * workload.m
        )
        stall_scale = (
            1.0 if working_bytes > machine.config.tile_data_bytes else 0.0
        )
        comm_exposed = 0.0
    else:
        tiles = machine.config.tiles
        busy = machine.tile_cycles(total_instr / tiles)
        # Panel broadcast per K-step: each tile imports its A row-panel
        # and B column-panel slices through its mesh link; without
        # double buffering (mimd) the transfer is exposed, with
        # streaming (stream) it overlaps the inner loop.
        kb = min(16, workload.k)
        steps = workload.k // kb if workload.k % kb == 0 else workload.k
        panel_words = (
            workload.n // grid * kb + kb * workload.m // grid
        )
        sync = transfer_latency(
            machine.config, (0, 0),
            (machine.config.mesh_rows - 1, machine.config.mesh_cols - 1),
        )
        per_step = panel_words / machine.config.static_link_words_per_cycle
        if mode == "mimd":
            comm_exposed = steps * (per_step + sync)
            stall_scale = 0.5
        else:
            comm_exposed = steps * sync  # transfers overlap the MACs
            stall_scale = 0.0
    if stall_scale:
        machine.cache_stall_cycles(busy)  # emits the stall span when traced

    a, b = workload.make_inputs(seed)
    block = max(1, workload.n // grid)
    output = blocked_matmul(a, b, block)
    ok = functional_match(output, matmul_reference(a, b), rtol=1e-3)

    return {
        "workload": workload,
        "machine": machine,
        "mode": mode,
        "census": census,
        "total_instr": total_instr,
        "busy": busy,
        "comm_exposed": comm_exposed,
        "stall_scale": stall_scale,
        "output": output,
        "ok": ok,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration: only the cache-stall
    fraction varies across cells."""
    workload = s["workload"]
    machine = s["machine"]
    mode = s["mode"]
    busy = s["busy"]

    stall_fraction = batch.cal_vector(cals, "raw", "cache_stall_fraction")

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        f = float(stall_fraction[i])
        stall = busy * f / (1.0 - f)
        if mode == "single":
            breakdown = CycleBreakdown(
                {"compute": busy, "cache stalls": stall * s["stall_scale"]}
            )
        else:
            breakdown = CycleBreakdown(
                {"compute": busy, "network": s["comm_exposed"]}
            )
            if mode == "mimd":
                breakdown.charge("cache stalls", stall * 0.5)
        runs.append(
            KernelRun(
                kernel="matmul",
                machine="raw",
                spec=machine.spec,
                breakdown=breakdown,
                ops=s["census"],
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "mode": mode,
                    "macs": workload.macs,
                    "instructions": s["total_instr"],
                    "comm_exposed_cycles": s["comm_exposed"],
                },
            )
        )
    return runs


def speedup_vs_single_tile(
    workload: Optional[MatmulWorkload] = None,
    calibration: Optional[Calibration] = None,
) -> dict:
    """§2.3's comparison: parallel modes against the single-tile
    load/store baseline."""
    workload = workload or MatmulWorkload()
    single = run(workload, calibration, mode="single")
    mimd = run(workload, calibration, mode="mimd")
    stream = run(workload, calibration, mode="stream")
    return {
        "single_cycles": single.cycles,
        "mimd_cycles": mimd.cycles,
        "stream_cycles": stream.cycles,
        "mimd_speedup": single.cycles / mimd.cycles,
        "stream_speedup": single.cycles / stream.cycles,
    }
