"""Beam steering on Imagine (§3.3, §4.4).

"a manually optimized kernel was written to maximize cluster ALU
utilization.  The input data streams are loaded into the stream register
file and supplied to the clusters.  The results are written back to
memory through the register file."  §4.4: "The performance is limited by
memory bandwidth due to the relatively low number of computation[s] per
memory access.  The load and store operations take 89% of the simulation
time.  The remaining 11% of execution time is due to the software
pipeline prologue."

Model (per dwell x direction invocation over all elements), as an
explicit host stream program: two calibration-table gathers (at the
calibrated gather derate), one element-parameter input stream, the
kernel (six adder ops per output across eight clusters, preceded by its
software-pipeline prologue), and one output stream.  The short
per-invocation streams defeat cross-invocation software pipelining
(§4.3's "the small size ... reduces the amount of software pipelining"),
so each invocation's prologue-plus-kernel sits between its stream
batches on the schedule — which is exactly how §4.4's 89% loads/stores
plus 11% prologue accounting decomposes.

The ``tables_in_srf`` option reproduces §4.4's what-if: "If table values
were read from the stream register file rather than memory ...
performance would be increased by a factor of about two."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.base import KernelRun
from repro.arch.imagine.cluster import ClusterOpMix, cluster_schedule_cycles
from repro.arch.imagine.machine import ImagineMachine
from repro.arch.imagine.stream_program import (
    StreamProgram,
    execute_measured,
    reschedule,
)
from repro.calibration import Calibration
from repro.kernels.beam_steering import (
    BeamSteeringWorkload,
    beam_steering_reference,
    make_tables,
)
from repro.kernels.workloads import canonical_beam_steering
from repro.mappings import batch
from repro.mappings.base import resolve_calibration
from repro.memory.streams import Gather, Sequential
from repro.sim.accounting import CycleBreakdown
from repro.units import WORD_BYTES


def run(
    workload: Optional[BeamSteeringWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
    tables_in_srf: bool = False,
) -> KernelRun:
    """Run the Imagine beam steering; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(
        _structure(workload, cal, seed, tables_in_srf), [cal]
    )[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[BeamSteeringWorkload] = None,
    seed: int = 0,
    tables_in_srf: bool = False,
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (stream program, gather address streams, reference output); each cell
    replays the schedule with its own timing constants."""
    cals = list(calibrations)
    batch.require_uniform_structure("imagine", cals)
    return _evaluate(
        _structure(workload, cals[0], seed, tables_in_srf), cals
    )


def _structure(
    workload: Optional[BeamSteeringWorkload],
    cal: Calibration,
    seed: int,
    tables_in_srf: bool,
) -> Dict:
    """The calibration-independent pass: SRF allocation, the per-
    invocation host stream program, one measured execution, and the
    reference output."""
    workload = workload or canonical_beam_steering()
    machine = ImagineMachine(calibration=cal.imagine)

    elements = workload.elements
    invocations = workload.dwells * workload.directions
    machine.srf.allocate(
        "beam-streams", 2 * 5 * elements * WORD_BYTES
    )  # 4 in + 1 out, double-buffered
    if tables_in_srf:
        machine.srf.allocate("beam-tables", workload.table_bytes)

    coarse_base = 0
    fine_base = workload.coarse_table_words
    pos_base = fine_base + workload.fine_table_words
    out_base = pos_base + elements

    element_idx = np.arange(elements, dtype=np.int64)
    # Per-output compute: 5 adds + 1 shift on the adders, SIMD over the
    # clusters, plus the per-invocation software-pipeline prologue.
    mix = ClusterOpMix(adds=machine.spread_over_clusters(6.0 * elements))
    kernel_per_invocation = (
        machine.kernel_cycles(mix) + machine.kernel_startups(1)
    )

    program = StreamProgram()
    for dwell in range(workload.dwells):
        for d in range(workload.directions):
            inv = dwell * workload.directions + d
            load_names = []
            if not tables_in_srf:
                program.load(
                    f"coarse{inv}",
                    Gather(coarse_base, element_idx),
                    gather=True,
                )
                program.load(
                    f"fine{inv}",
                    Gather(fine_base, element_idx * workload.directions + d),
                    gather=True,
                )
                load_names += [f"coarse{inv}", f"fine{inv}"]
            program.load(f"pos{inv}", Sequential(pos_base, elements))
            load_names.append(f"pos{inv}")
            program.kernel(
                f"k{inv}", kernel_per_invocation, deps=load_names
            )
            program.store(
                f"out{inv}",
                Sequential(out_base + inv * elements, elements),
                deps=(f"k{inv}",),
            )
    _, op_costs = execute_measured(program, machine)

    tables = make_tables(workload, seed)
    output = beam_steering_reference(workload, tables)

    return {
        "workload": workload,
        "machine": machine,
        "tables_in_srf": tables_in_srf,
        "op_costs": op_costs,
        "mix_arith": ClusterOpMix(adds=mix.adds, muls=mix.muls, divs=mix.divs),
        "mix_comms": mix.comms,
        "invocations": invocations,
        "output": output,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration: gather, kernel, and
    prologue timings are rebuilt from each cell's constants and the
    dependency schedule is replayed."""
    workload = s["workload"]
    machine = s["machine"]
    invocations = s["invocations"]

    row_cycle = batch.cal_vector(cals, "imagine", "dram_row_cycle")
    gather_derate = batch.cal_vector(cals, "imagine", "gather_derate")
    inefficiency = batch.cal_vector(
        cals, "imagine", "cluster_schedule_inefficiency"
    )
    comm_exposure = batch.cal_vector(cals, "imagine", "comm_exposure")
    kernel_startup = batch.cal_vector(cals, "imagine", "kernel_startup")

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        kernel_per_invocation = (
            cluster_schedule_cycles(
                s["mix_arith"],
                machine.config,
                inefficiency=float(inefficiency[i]),
            )
            + s["mix_comms"] * float(comm_exposure[i])
        ) + 1 * float(kernel_startup[i])
        schedule = reschedule(
            s["op_costs"],
            machine,
            row_cycle=float(row_cycle[i]),
            gather_derate=float(gather_derate[i]),
            kernel_cycles={
                f"k{inv}": kernel_per_invocation
                for inv in range(invocations)
            },
        )

        memory = schedule.memory_busy
        exposed_kernel = schedule.exposed_over_memory
        breakdown = CycleBreakdown(
            {"memory": memory, "kernel+prologue (exposed)": exposed_kernel}
        )
        total = breakdown.total
        runs.append(
            KernelRun(
                kernel="beam_steering",
                machine="imagine",
                spec=machine.spec,
                breakdown=breakdown,
                ops=workload.op_counts(),
                output=s["output"],
                # reference is the definition; oracle in tests
                functional_ok=True,
                metrics={
                    "outputs": workload.outputs,
                    "tables_in_srf": s["tables_in_srf"],
                    # §4.4: "load and store operations take 89% of the
                    # simulation time"; "the remaining 11% ... software
                    # pipeline prologue".
                    "loadstore_fraction": memory / total if total else 0.0,
                    "prologue_fraction": (
                        exposed_kernel / total if total else 0.0
                    ),
                    "kernel_hidden_cycles": max(
                        0.0,
                        invocations * kernel_per_invocation - exposed_kernel,
                    ),
                },
            )
        )
    return runs
