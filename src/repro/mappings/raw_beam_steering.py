"""Beam steering on Raw (§3.3, §4.4).

"The beam steering processing on each data is independent.  Thus, on Raw,
we partition the data among 16 tiles and each tile processes its own
data.  Input data is streamed through the static network and is operated
on directly from the network."  §4.4: "we used the static network to
stream data from memory while hiding memory latency.  In this
implementation, loads and stores are not necessary and ALU utilization is
very high."

Model: each tile processes outputs for its share of the elements; per
output it executes the six arithmetic operations (operands read directly
from the network registers — no loads) plus the calibrated network-
sequencing/loop instructions, at one instruction per cycle.  Per-stream
pipeline fill (the 3-cycles-plus-hops static-network latency from the
tile's port) is charged once per dwell x direction stream.  The port and
link bandwidth claims are verified against the achieved time, as in the
corner-turn mapping.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.base import KernelRun
from repro.arch.raw.machine import RawMachine
from repro.arch.raw.network import port_coords, transfer_latency
from repro.calibration import Calibration
from repro.kernels.beam_steering import (
    BeamSteeringWorkload,
    beam_steering_reference,
    make_tables,
)
from repro.kernels.workloads import canonical_beam_steering
from repro.mappings.base import require, resolve_calibration
from repro.sim.accounting import CycleBreakdown


def run(
    workload: Optional[BeamSteeringWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Run the Raw beam steering; returns a :class:`KernelRun`."""
    workload = workload or canonical_beam_steering()
    cal = resolve_calibration(calibration)
    machine = RawMachine(calibration=cal.raw)

    per_tile_elements = machine.distribute(workload.elements)
    busiest_elements = max(per_tile_elements)
    streams = workload.dwells * workload.directions
    per_tile_outputs = busiest_elements * streams

    arith_per_output = 6.0  # 5 adds + 1 shift (§4.4's census)
    stream_per_output = machine.cal.stream_ops_per_output
    compute = machine.tile_cycles(per_tile_outputs * arith_per_output)
    sequencing = machine.tile_cycles(per_tile_outputs * stream_per_output)

    # Pipeline fill per stream: network latency from the farthest port.
    ports = port_coords(machine.config)
    max_latency = max(
        transfer_latency(machine.config, ports[0], (r, c))
        for r in range(machine.config.mesh_rows)
        for c in range(machine.config.mesh_cols)
    )
    startup = streams * max_latency

    breakdown = CycleBreakdown(
        {
            "compute": compute,
            "network sequencing": sequencing,
            "startup": startup,
        }
    )
    total = breakdown.total

    # §4.4's implicit claims, verified: ports and links keep up.
    total_words = 3.0 * workload.outputs  # 2 table words in + 1 out
    port_bound = machine.offchip_time(total_words)
    require(
        port_bound <= total,
        "DRAM ports would bottleneck the Raw beam steering, contradicting "
        "§4.4",
    )
    words_per_tile = 3.0 * busiest_elements * streams
    for tile_idx, coord in enumerate(ports[: machine.config.tiles]):
        machine.static_network.add_flow(coord, coord, words_per_tile)
    require(
        machine.static_network.check_feasible(total),
        "static network would bottleneck the Raw beam steering, "
        "contradicting §4.4",
    )

    tables = make_tables(workload, seed)
    output = beam_steering_reference(workload, tables)

    ops = workload.op_counts()
    return KernelRun(
        kernel="beam_steering",
        machine="raw",
        spec=machine.spec,
        breakdown=breakdown,
        ops=ops,
        output=output,
        functional_ok=True,  # reference is the definition; oracle in tests
        metrics={
            "outputs": workload.outputs,
            # §4.4: "loads and stores are not necessary".
            "loads_stores_issued": 0,
            # §4.4: "ALU utilization is very high" — issue slots are
            # never idle on stalls; arithmetic share of issued work:
            "issue_slot_occupancy": (compute + sequencing) / total
            if total
            else 0.0,
            "arithmetic_fraction": compute / total if total else 0.0,
            "port_utilization": port_bound / total if total else 0.0,
        },
    )
