"""Beam steering on Raw (§3.3, §4.4).

"The beam steering processing on each data is independent.  Thus, on Raw,
we partition the data among 16 tiles and each tile processes its own
data.  Input data is streamed through the static network and is operated
on directly from the network."  §4.4: "we used the static network to
stream data from memory while hiding memory latency.  In this
implementation, loads and stores are not necessary and ALU utilization is
very high."

Model: each tile processes outputs for its share of the elements; per
output it executes the six arithmetic operations (operands read directly
from the network registers — no loads) plus the calibrated network-
sequencing/loop instructions, at one instruction per cycle.  Per-stream
pipeline fill (the 3-cycles-plus-hops static-network latency from the
tile's port) is charged once per dwell x direction stream.  The port and
link bandwidth claims are verified against the achieved time, as in the
corner-turn mapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.base import KernelRun
from repro.arch.raw.machine import RawMachine
from repro.arch.raw.network import port_coords, transfer_latency
from repro.calibration import Calibration
from repro.kernels.beam_steering import (
    BeamSteeringWorkload,
    beam_steering_reference,
    make_tables,
)
from repro.kernels.workloads import canonical_beam_steering
from repro.mappings import batch
from repro.mappings.base import require, resolve_calibration
from repro.sim.accounting import CycleBreakdown


def run(
    workload: Optional[BeamSteeringWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Run the Raw beam steering; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(_structure(workload, cal, seed), [cal])[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[BeamSteeringWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (distribution, network latency scan, reference output)."""
    cals = list(calibrations)
    batch.require_uniform_structure("raw", cals)
    return _evaluate(_structure(workload, cals[0], seed), cals)


def _structure(
    workload: Optional[BeamSteeringWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    """The calibration-independent pass: tile distribution, compute
    issue time, network fill latency, flow accounting, output."""
    workload = workload or canonical_beam_steering()
    machine = RawMachine(calibration=cal.raw)

    per_tile_elements = machine.distribute(workload.elements)
    busiest_elements = max(per_tile_elements)
    streams = workload.dwells * workload.directions
    per_tile_outputs = busiest_elements * streams

    arith_per_output = 6.0  # 5 adds + 1 shift (§4.4's census)
    compute = machine.tile_cycles(per_tile_outputs * arith_per_output)
    machine.tile_cycles(
        per_tile_outputs * machine.cal.stream_ops_per_output
    )  # emits the sequencing span when traced

    # Pipeline fill per stream: network latency from the farthest port.
    ports = port_coords(machine.config)
    max_latency = max(
        transfer_latency(machine.config, ports[0], (r, c))
        for r in range(machine.config.mesh_rows)
        for c in range(machine.config.mesh_cols)
    )
    startup = streams * max_latency

    total_words = 3.0 * workload.outputs  # 2 table words in + 1 out
    port_bound = machine.offchip_time(total_words)
    words_per_tile = 3.0 * busiest_elements * streams
    for tile_idx, coord in enumerate(ports[: machine.config.tiles]):
        machine.static_network.add_flow(coord, coord, words_per_tile)

    tables = make_tables(workload, seed)
    output = beam_steering_reference(workload, tables)

    return {
        "workload": workload,
        "machine": machine,
        "per_tile_outputs": per_tile_outputs,
        "compute": compute,
        "startup": startup,
        "port_bound": port_bound,
        "output": output,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration: only the per-output
    network-sequencing instruction count varies; the §4.4 bandwidth
    claims are re-verified against each cell's achieved time."""
    workload = s["workload"]
    machine = s["machine"]
    compute = s["compute"]

    stream_ops = batch.cal_vector(cals, "raw", "stream_ops_per_output")
    sequencing = s["per_tile_outputs"] * stream_ops

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        breakdown = CycleBreakdown(
            {
                "compute": compute,
                "network sequencing": float(sequencing[i]),
                "startup": s["startup"],
            }
        )
        total = breakdown.total

        # §4.4's implicit claims, verified: ports and links keep up.
        require(
            s["port_bound"] <= total,
            "DRAM ports would bottleneck the Raw beam steering, "
            "contradicting §4.4",
        )
        require(
            machine.static_network.check_feasible(total),
            "static network would bottleneck the Raw beam steering, "
            "contradicting §4.4",
        )

        runs.append(
            KernelRun(
                kernel="beam_steering",
                machine="raw",
                spec=machine.spec,
                breakdown=breakdown,
                ops=workload.op_counts(),
                output=s["output"],
                functional_ok=True,  # reference is the definition
                metrics={
                    "outputs": workload.outputs,
                    # §4.4: "loads and stores are not necessary".
                    "loads_stores_issued": 0,
                    # §4.4: "ALU utilization is very high" — issue slots
                    # are never idle on stalls; arithmetic share of
                    # issued work:
                    "issue_slot_occupancy": (
                        (compute + float(sequencing[i])) / total
                        if total
                        else 0.0
                    ),
                    "arithmetic_fraction": (
                        compute / total if total else 0.0
                    ),
                    "port_utilization": (
                        s["port_bound"] / total if total else 0.0
                    ),
                },
            )
        )
    return runs
