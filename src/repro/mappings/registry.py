"""Registry of kernel -> machine mappings.

``run(kernel, machine, **kwargs)`` dispatches to the mapping module; the
five machine names match the paper's Table 3 rows (``ppc``, ``altivec``,
``viram``, ``imagine``, ``raw``) and the three kernel names its columns
(``corner_turn``, ``cslc``, ``beam_steering``).

Runs are memoized through two tiers: the in-process
:data:`repro.perf.cache.RUN_CACHE` and the persistent
:data:`repro.perf.diskcache.DISK_CACHE`.  Mappings are pure functions
of their arguments, so a repeated ``(kernel, machine, kwargs)`` request
is served from the first result instead of re-simulated — within this
process from tier 1, across processes (CI jobs, fresh CLI invocations,
pool workers) from tier 2, whose hits are promoted into tier 1.  Pass
``cache=False`` to force a fresh simulation (the opt-out for stateful
experiments), or disable the tiers globally with ``REPRO_RUN_CACHE=0``
/ ``REPRO_DISK_CACHE=0``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.arch.base import KernelRun
from repro.errors import MappingError
from repro.perf import timers
from repro.perf.cache import RUN_CACHE, cache_key
from repro.perf.diskcache import DISK_CACHE
from repro.trace.tracer import active_tracer
from repro.mappings import (
    imagine_beam_steering,
    imagine_corner_turn,
    imagine_cslc,
    ppc_beam_steering,
    ppc_corner_turn,
    ppc_cslc,
    raw_beam_steering,
    raw_corner_turn,
    raw_cslc,
    viram_beam_steering,
    viram_corner_turn,
    viram_cslc,
)

KERNELS: Tuple[str, ...] = ("corner_turn", "cslc", "beam_steering")

#: Table 3 row order.
MACHINES: Tuple[str, ...] = ("ppc", "altivec", "viram", "imagine", "raw")

_REGISTRY: Dict[Tuple[str, str], Callable[..., KernelRun]] = {
    ("corner_turn", "ppc"): ppc_corner_turn.run_scalar,
    ("corner_turn", "altivec"): ppc_corner_turn.run_altivec,
    ("corner_turn", "viram"): viram_corner_turn.run,
    ("corner_turn", "imagine"): imagine_corner_turn.run,
    ("corner_turn", "raw"): raw_corner_turn.run,
    ("cslc", "ppc"): ppc_cslc.run_scalar,
    ("cslc", "altivec"): ppc_cslc.run_altivec,
    ("cslc", "viram"): viram_cslc.run,
    ("cslc", "imagine"): imagine_cslc.run,
    ("cslc", "raw"): raw_cslc.run,
    ("beam_steering", "ppc"): ppc_beam_steering.run_scalar,
    ("beam_steering", "altivec"): ppc_beam_steering.run_altivec,
    ("beam_steering", "viram"): viram_beam_steering.run,
    ("beam_steering", "imagine"): imagine_beam_steering.run,
    ("beam_steering", "raw"): raw_beam_steering.run,
}


#: Tensor-batch entry points: one call evaluates a whole list of
#: calibrations against a shared structure pass (see
#: :mod:`repro.mappings.batch` and :mod:`repro.perf.tensorsweep`).
#: Every pair mirrors the scalar entry in :data:`_REGISTRY`.
_BATCH_REGISTRY: Dict[Tuple[str, str], Callable[..., Any]] = {
    ("corner_turn", "ppc"): ppc_corner_turn.run_scalar_batch,
    ("corner_turn", "altivec"): ppc_corner_turn.run_altivec_batch,
    ("corner_turn", "viram"): viram_corner_turn.run_batch,
    ("corner_turn", "imagine"): imagine_corner_turn.run_batch,
    ("corner_turn", "raw"): raw_corner_turn.run_batch,
    ("cslc", "ppc"): ppc_cslc.run_scalar_batch,
    ("cslc", "altivec"): ppc_cslc.run_altivec_batch,
    ("cslc", "viram"): viram_cslc.run_batch,
    ("cslc", "imagine"): imagine_cslc.run_batch,
    ("cslc", "raw"): raw_cslc.run_batch,
    ("beam_steering", "ppc"): ppc_beam_steering.run_scalar_batch,
    ("beam_steering", "altivec"): ppc_beam_steering.run_altivec_batch,
    ("beam_steering", "viram"): viram_beam_steering.run_batch,
    ("beam_steering", "imagine"): imagine_beam_steering.run_batch,
    ("beam_steering", "raw"): raw_beam_steering.run_batch,
}


def available() -> Tuple[Tuple[str, str], ...]:
    """All (kernel, machine) pairs with a mapping."""
    return tuple(sorted(_REGISTRY))


def batch_runner(
    kernel: str, machine: str
) -> Optional[Callable[..., Any]]:
    """The tensor-batch entry point for ``(kernel, machine)``, or ``None``
    when the pair has no batch mapping.  The runner's signature is
    ``runner(calibrations, **kwargs) -> List[KernelRun]``, one result per
    calibration, bit-identical to the equivalent per-cell ``run`` calls.
    """
    return _BATCH_REGISTRY.get((kernel, machine))


#: Optional continuous-validation hook (see :func:`set_post_run_validator`).
_POST_RUN_VALIDATOR: Optional[
    Callable[[KernelRun, Mapping[str, Any]], None]
] = None


def set_post_run_validator(
    validator: Optional[Callable[[KernelRun, Mapping[str, Any]], None]],
) -> Optional[Callable[[KernelRun, Mapping[str, Any]], None]]:
    """Install (or, with ``None``, remove) a post-run validation hook.

    The hook is called as ``validator(result, kwargs)`` after every
    *freshly simulated* run — cache hits are skipped, since the entry
    was validated when it was produced.  ``repro.check`` uses this for
    continuous-validation mode (every run checked against the §2.5
    bounds as it is produced); the hook may raise
    :class:`~repro.errors.CheckError` to fail the run.  Returns the
    previously installed hook so callers can restore it.
    """
    global _POST_RUN_VALIDATOR
    previous = _POST_RUN_VALIDATOR
    _POST_RUN_VALIDATOR = validator
    return previous


def run(kernel: str, machine: str, *, cache: bool = True, **kwargs) -> KernelRun:
    """Run ``kernel`` on ``machine``; keyword arguments are forwarded to
    the mapping (``workload=``, ``calibration=``, ``seed=``, and any
    mapping-specific options such as ``balanced=`` or
    ``tables_in_srf=``).

    Results are memoized (see the module docstring); ``cache=False``
    bypasses the cache for this call.
    """
    try:
        fn = _REGISTRY[(kernel, machine)]
    except KeyError:
        raise MappingError(
            f"no mapping for kernel {kernel!r} on machine {machine!r}; "
            f"kernels: {KERNELS}, machines: {MACHINES}"
        ) from None
    tracer = active_tracer()
    if tracer is not None:
        # A traced run must actually execute — a memoized hit would
        # replay no events — and the memo cache must not absorb runs
        # whose only difference is the observer.  Counts as a bypass;
        # the result is still identical to an untraced run (tracing
        # only observes), which invariant.trace.noninterference proves.
        RUN_CACHE.note_bypass()
        with timers.timer(f"run:{kernel}/{machine}"):
            result = fn(**kwargs)
        _post_run(result, kwargs)
        tracer.attach_run(result, run_id=cache_key(kernel, machine, kwargs))
        return result
    if not (cache and RUN_CACHE.enabled):
        RUN_CACHE.note_bypass()
        with timers.timer(f"run:{kernel}/{machine}"):
            result = fn(**kwargs)
        _post_run(result, kwargs)
        return result
    key = cache_key(kernel, machine, kwargs)
    if key is None:
        # An argument has no canonical content encoding; run uncached.
        RUN_CACHE.note_bypass()
        with timers.timer(f"run:{kernel}/{machine}"):
            result = fn(**kwargs)
        _post_run(result, kwargs)
        return result
    hit = RUN_CACHE.lookup(key)
    if hit is not None:
        return hit
    if DISK_CACHE.enabled:
        # Tier 2: a run some other process (or an earlier life of this
        # one) already simulated.  Digest-verified by the lookup;
        # promoted into tier 1 so the rest of this session hits there.
        persisted = DISK_CACHE.lookup(key)
        if persisted is not None:
            RUN_CACHE.insert(key, persisted)
            return persisted
    with timers.timer(f"run:{kernel}/{machine}"):
        result = fn(**kwargs)
    _post_run(result, kwargs)
    RUN_CACHE.insert(key, result)
    DISK_CACHE.insert(key, result)
    return result


def _post_run(result: KernelRun, kwargs: Mapping[str, Any]) -> None:
    if _POST_RUN_VALIDATOR is not None:
        _POST_RUN_VALIDATOR(result, kwargs)


def post_run_validate(result: KernelRun, kwargs: Mapping[str, Any]) -> None:
    """Apply the installed post-run validation hook (if any) to a freshly
    produced run.  The tensor engine calls this once per batch cell so a
    batched grid is validated exactly as the per-cell path would be."""
    _post_run(result, kwargs)
