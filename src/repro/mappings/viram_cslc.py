"""CSLC on VIRAM (§3.2, §4.3).

"a parallelized hand-optimized radix-4 FFT is used for VIRAM ... we used
three radix-4 stages and one radix-2 stage."  §4.3 decomposes VIRAM's
CSLC time as ~3.6x the peak-rate prediction: x1.67 from FFT shuffle
overhead instructions, x1.52 from the second vector unit not executing
floating point, and x1.41 from memory latency and vector startup.

The model realises those three mechanisms from real censuses:

* ``compute`` — the exact arithmetic census of the whole interval
  (:meth:`CSLCWorkload.op_counts`) issued on VFU0 at 8 element-ops/cycle
  (FP cannot use VFU1 — the hardware restriction behind x1.52 relative to
  the 16-op/cycle Table 2 peak).
* ``fft shuffles`` — the vectorised FFT's data-rearrangement element-ops
  (:meth:`FFTPlan.shuffle_census`) issued on VFU1; butterfly dataflow
  serialises them with the FP stream, so the calibrated exposed fraction
  is 1.0 (the x1.67 "overhead instructions" mechanism).
* ``memory`` — sub-band loads, result stores, and one intermediate spill
  pass (the 8 KB register file holds only part of a batch) at the
  8-word/cycle sequential rate, half hidden under computation.
* ``startup`` — exposed dead time per vector instruction at the maximum
  vector length of 64 (vectorising across sub-bands), §4.3's vector
  startup component.

Functionally the mapping runs the real from-scratch radix-4/radix-2
transforms over synthetic jammed channels and cross-checks the cancelled
outputs against an independent ``numpy.fft`` oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.base import KernelRun
from repro.arch.viram.machine import ViramMachine
from repro.calibration import Calibration
from repro.kernels.cslc import CSLCWorkload, cslc_oracle, cslc_reference
from repro.kernels.fft import FFTPlan
from repro.kernels.signal import make_jammed_channels
from repro.kernels.workloads import canonical_cslc
from repro.mappings import batch
from repro.mappings.base import functional_match, resolve_calibration
from repro.sim.accounting import CycleBreakdown


def run(
    workload: Optional[CSLCWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Run the VIRAM CSLC; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(_structure(workload, cal, seed), [cal])[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CSLCWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (op census, FFT transforms, cancellation oracle)."""
    cals = list(calibrations)
    batch.require_uniform_structure("viram", cals)
    return _evaluate(_structure(workload, cals[0], seed), cals)


def _structure(
    workload: Optional[CSLCWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    """The calibration-independent pass: the arithmetic/shuffle census,
    issue-time bases, and the functional FFT/cancellation computation.
    ``spill_passes`` is structural (it multiplies the word traffic)."""
    workload = workload or canonical_cslc()
    machine = ViramMachine(calibration=cal.viram)
    plan = FFTPlan(workload.subband_len)  # radix-4 stages + one radix-2

    ops = workload.op_counts(plan)
    flops = ops.flops
    permutes = plan.shuffle_census().permutes * workload.transforms

    compute = machine.fp_issue_cycles(flops)
    shuffle_issue = machine.vfu_cycles(permutes)

    # Sub-band data movement: load + store once, plus spill passes.
    words_per_transform = 2 * workload.subband_len  # complex = 2 words
    memory_words = (
        workload.transforms
        * words_per_transform
        * 2  # load + store
        * (1 + machine.cal.spill_passes)
    )

    instructions = machine.instruction_count(flops + permutes)
    machine.dead_time(instructions)  # emits the startup span when traced

    channels = make_jammed_channels(
        workload.samples, workload.n_mains, workload.n_aux, seed=seed
    )
    result = cslc_reference(channels, workload, plan=plan)
    oracle = cslc_oracle(channels, workload, result.weights)
    ok = functional_match(result.outputs, oracle)

    return {
        "workload": workload,
        "machine": machine,
        "ops": ops,
        "flops": flops,
        "permutes": permutes,
        "compute": compute,
        "shuffle_issue": shuffle_issue,
        "memory_words": memory_words,
        "instructions": instructions,
        "output": result.outputs,
        "ok": ok,
        "cancellation_db": result.cancellation_db,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration from the shared
    structure; the exposed fractions and dead time vary cell to cell."""
    workload = s["workload"]
    machine = s["machine"]
    flops = s["flops"]
    permutes = s["permutes"]

    shuffle_fraction = batch.cal_vector(
        cals, "viram", "shuffle_exposed_fraction"
    )
    memory_fraction = batch.cal_vector(
        cals, "viram", "memory_exposed_fraction"
    )
    dead_time = batch.cal_vector(cals, "viram", "vector_dead_time")

    shuffles = s["shuffle_issue"] * shuffle_fraction
    memory = (
        s["memory_words"]
        / machine.config.seq_words_per_cycle
        * memory_fraction
    )
    startup = s["instructions"] * dead_time

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        breakdown = CycleBreakdown(
            {
                "compute": s["compute"],
                "fft shuffles": float(shuffles[i]),
                "memory": float(memory[i]),
                "startup": float(startup[i]),
            }
        )

        total = breakdown.total
        peak16 = flops / machine.spec.flops_per_cycle  # Table 2 peak basis
        overhead_factor = (flops + permutes) / flops
        issue = s["compute"] + float(shuffles[i])
        alu_restriction_factor = issue / ((flops + permutes) / 16.0)
        memory_startup_factor = total / issue if issue else 0.0
        runs.append(
            KernelRun(
                kernel="cslc",
                machine="viram",
                spec=machine.spec,
                breakdown=breakdown,
                ops=s["ops"],
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "cancellation_db": s["cancellation_db"],
                    "transforms": workload.transforms,
                    # §4.3: "about 3.6 times longer than what is
                    # predicted by peak performance", decomposed
                    # 1.67 x 1.52 x 1.41.
                    "slowdown_vs_peak": total / peak16 if peak16 else 0.0,
                    "overhead_instruction_factor": overhead_factor,
                    "alu_restriction_factor": alu_restriction_factor,
                    "memory_startup_factor": memory_startup_factor,
                },
            )
        )
    return runs
