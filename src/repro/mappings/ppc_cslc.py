"""CSLC on the PowerPC G4, scalar and AltiVec (§4.1, §4.5).

§4.5: "Using the AltiVec architecture gains a performance factor of about
six for the CSLC."

Scalar model — a compiled-C radix-2 CSLC:

* libm twiddle recomputation: a sin+cos pair per non-trivial-twiddle
  butterfly (the dominant term of a textbook C FFT on this machine);
* the instruction stream from the exact memory-to-memory census
  (:meth:`FFTPlan.memory_census`) plus per-butterfly address/loop
  instructions, issued 3-wide;
* exposed FP-pipeline latency on the dependent halves of the flops;
* streaming compulsory cache misses over the channel data.

AltiVec model — hand-inserted intrinsics over the radix-4 plan:

* vector arithmetic at 4 lanes per op, the shuffle census as vector
  permutes, one alignment permute per vector load;
* scalar address/loop code issued alongside;
* the per-butterfly dependency-chain stall that keeps the gain near the
  measured ~6x (see :class:`repro.calibration.PpcCalibration`);
* the same compulsory streaming misses and precomputed twiddle tables
  (no libm calls).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.base import KernelRun
from repro.arch.ppc.machine import PpcMachine
from repro.calibration import Calibration
from repro.kernels.cslc import CSLCWorkload, cslc_oracle, cslc_reference
from repro.kernels.fft import FFTPlan, radix2_radices
from repro.kernels.signal import make_jammed_channels
from repro.kernels.workloads import canonical_cslc
from repro.mappings.base import functional_match, resolve_calibration
from repro.sim.accounting import CycleBreakdown

#: Scalar per-butterfly bookkeeping (index arithmetic + loop control).
SCALAR_ADDR_PER_BUTTERFLY = 6.0
SCALAR_LOOP_PER_BUTTERFLY = 2.0

#: Fraction of flops on the dependent critical path of a butterfly.
DEPENDENT_FLOP_FRACTION = 0.5


def _streaming_miss_cycles(
    workload: CSLCWorkload, machine: PpcMachine
) -> float:
    """Compulsory misses streaming the interval's channel data."""
    channel_words = (
        (workload.n_channels + workload.n_mains) * workload.samples * 2
    )
    lines = channel_words / machine.config.l1_line_words
    return machine.memory_miss_stall(lines)


def _weight_terms(workload: CSLCWorkload) -> Tuple[float, float, float]:
    """(flops, memory ops, bookkeeping ops) of one sub-band's weights."""
    bins = workload.subband_len
    flops = workload.n_mains * bins * workload.n_aux * 8.0
    mem = workload.n_mains * bins * (workload.n_aux * 4.0 + 4.0)
    addr = workload.n_mains * bins * 2.0
    return flops, mem, addr


def run_scalar(
    workload: Optional[CSLCWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Scalar PPC CSLC; returns a :class:`KernelRun`."""
    workload = workload or canonical_cslc()
    cal = resolve_calibration(calibration)
    machine = PpcMachine(calibration=cal.ppc)
    plan = FFTPlan(workload.subband_len, radix2_radices(workload.subband_len))

    transforms = workload.transforms
    mem_census = plan.memory_census()
    butterflies = sum(s.butterflies for s in plan.stages)
    nontrivial = sum(s.nontrivial_twiddles for s in plan.stages)

    per_transform_instr = (
        mem_census.flops
        + mem_census.memory_ops
        + butterflies * (SCALAR_ADDR_PER_BUTTERFLY + SCALAR_LOOP_PER_BUTTERFLY)
    )
    issue = machine.issue_cycles(per_transform_instr * transforms)
    trig = machine.trig_cycles(nontrivial * transforms)
    fp_stalls = machine.scalar_fp_stall_cycles(
        mem_census.flops * DEPENDENT_FLOP_FRACTION * transforms
    )

    w_flops, w_mem, w_addr = _weight_terms(workload)
    weight_issue = machine.issue_cycles(
        (w_flops + w_mem + w_addr) * workload.n_subbands
    )
    weight_stalls = machine.scalar_fp_stall_cycles(
        w_flops * DEPENDENT_FLOP_FRACTION * workload.n_subbands
    )

    cache = _streaming_miss_cycles(workload, machine)

    breakdown = CycleBreakdown(
        {
            "twiddle recomputation": trig,
            "issue": issue + weight_issue,
            "fp dependency stalls": fp_stalls + weight_stalls,
            "streaming misses": cache,
        }
    )

    channels = make_jammed_channels(
        workload.samples, workload.n_mains, workload.n_aux, seed=seed
    )
    result = cslc_reference(channels, workload, plan=plan)
    oracle = cslc_oracle(channels, workload, result.weights)
    ok = functional_match(result.outputs, oracle)

    ops = workload.op_counts(plan)
    return KernelRun(
        kernel="cslc",
        machine="ppc",
        spec=machine.spec,
        breakdown=breakdown,
        ops=ops,
        output=result.outputs,
        functional_ok=ok,
        metrics={
            "cancellation_db": result.cancellation_db,
            "trig_fraction": trig / breakdown.total if breakdown.total else 0.0,
        },
    )


def run_altivec(
    workload: Optional[CSLCWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """AltiVec PPC CSLC; returns a :class:`KernelRun`."""
    workload = workload or canonical_cslc()
    cal = resolve_calibration(calibration)
    machine = PpcMachine(calibration=cal.ppc)
    plan = FFTPlan(workload.subband_len)  # hand code uses the radix-4 plan

    transforms = workload.transforms
    width = machine.config.altivec_width
    mem_census = plan.memory_census()
    shuffle_census = plan.shuffle_census()
    butterflies = sum(s.butterflies for s in plan.stages)

    vec_flops = mem_census.flops / width
    vec_perms = shuffle_census.permutes / width
    vec_loads = mem_census.loads / width
    vec_stores = mem_census.stores / width
    align_perms = vec_loads  # one vperm per unaligned vector load
    vec_ops = vec_flops + vec_perms + vec_loads + vec_stores + align_perms

    scalar_bookkeeping = butterflies * SCALAR_ADDR_PER_BUTTERFLY
    issue = transforms * (
        machine.vector_issue_cycles(vec_ops)
        + machine.issue_cycles(scalar_bookkeeping)
    )
    stalls = transforms * machine.vector_stall_cycles(butterflies)

    w_flops, w_mem, w_addr = _weight_terms(workload)
    weight_vec_ops = (w_flops + w_mem) / width
    weight_issue = workload.n_subbands * (
        machine.vector_issue_cycles(weight_vec_ops)
        + machine.issue_cycles(w_addr)
    )
    weight_stalls = workload.n_subbands * machine.vector_stall_cycles(
        workload.subband_len / width
    )

    cache = _streaming_miss_cycles(workload, machine)

    breakdown = CycleBreakdown(
        {
            "issue": issue + weight_issue,
            "vector dependency stalls": stalls + weight_stalls,
            "streaming misses": cache,
        }
    )

    channels = make_jammed_channels(
        workload.samples, workload.n_mains, workload.n_aux, seed=seed
    )
    result = cslc_reference(channels, workload, plan=plan)
    oracle = cslc_oracle(channels, workload, result.weights)
    ok = functional_match(result.outputs, oracle)

    ops = workload.op_counts(plan)
    return KernelRun(
        kernel="cslc",
        machine="altivec",
        spec=machine.altivec_spec,
        breakdown=breakdown,
        ops=ops,
        output=result.outputs,
        functional_ok=ok,
        metrics={
            "cancellation_db": result.cancellation_db,
            "stall_fraction": (
                (stalls + weight_stalls) / breakdown.total
                if breakdown.total
                else 0.0
            ),
        },
    )
