"""CSLC on the PowerPC G4, scalar and AltiVec (§4.1, §4.5).

§4.5: "Using the AltiVec architecture gains a performance factor of about
six for the CSLC."

Scalar model — a compiled-C radix-2 CSLC:

* libm twiddle recomputation: a sin+cos pair per non-trivial-twiddle
  butterfly (the dominant term of a textbook C FFT on this machine);
* the instruction stream from the exact memory-to-memory census
  (:meth:`FFTPlan.memory_census`) plus per-butterfly address/loop
  instructions, issued 3-wide;
* exposed FP-pipeline latency on the dependent halves of the flops;
* streaming compulsory cache misses over the channel data.

AltiVec model — hand-inserted intrinsics over the radix-4 plan:

* vector arithmetic at 4 lanes per op, the shuffle census as vector
  permutes, one alignment permute per vector load;
* scalar address/loop code issued alongside;
* the per-butterfly dependency-chain stall that keeps the gain near the
  measured ~6x (see :class:`repro.calibration.PpcCalibration`);
* the same compulsory streaming misses and precomputed twiddle tables
  (no libm calls).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.base import KernelRun
from repro.arch.ppc.machine import PpcMachine
from repro.calibration import Calibration
from repro.kernels.cslc import CSLCWorkload, cslc_oracle, cslc_reference
from repro.kernels.fft import FFTPlan, radix2_radices
from repro.kernels.signal import make_jammed_channels
from repro.kernels.workloads import canonical_cslc
from repro.mappings import batch
from repro.mappings.base import functional_match, resolve_calibration
from repro.sim.accounting import CycleBreakdown

#: Scalar per-butterfly bookkeeping (index arithmetic + loop control).
SCALAR_ADDR_PER_BUTTERFLY = 6.0
SCALAR_LOOP_PER_BUTTERFLY = 2.0

#: Fraction of flops on the dependent critical path of a butterfly.
DEPENDENT_FLOP_FRACTION = 0.5


def _weight_terms(workload: CSLCWorkload) -> Tuple[float, float, float]:
    """(flops, memory ops, bookkeeping ops) of one sub-band's weights."""
    bins = workload.subband_len
    flops = workload.n_mains * bins * workload.n_aux * 8.0
    mem = workload.n_mains * bins * (workload.n_aux * 4.0 + 4.0)
    addr = workload.n_mains * bins * 2.0
    return flops, mem, addr


def run_scalar(
    workload: Optional[CSLCWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Scalar PPC CSLC; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate_scalar(_structure_scalar(workload, cal, seed), [cal])[0]


def run_scalar_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CSLCWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One scalar-PPC :class:`KernelRun` per calibration, sharing one
    structure pass (FFT censuses, functional transforms)."""
    cals = list(calibrations)
    batch.require_uniform_structure("ppc", cals)
    return _evaluate_scalar(_structure_scalar(workload, cals[0], seed), cals)


def _structure_scalar(
    workload: Optional[CSLCWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    """The calibration-independent pass: the radix-2 censuses, issue
    time, stall op counts, and the functional result."""
    workload = workload or canonical_cslc()
    machine = PpcMachine(calibration=cal.ppc)
    plan = FFTPlan(workload.subband_len, radix2_radices(workload.subband_len))

    transforms = workload.transforms
    mem_census = plan.memory_census()
    butterflies = sum(s.butterflies for s in plan.stages)
    nontrivial = sum(s.nontrivial_twiddles for s in plan.stages)

    per_transform_instr = (
        mem_census.flops
        + mem_census.memory_ops
        + butterflies * (SCALAR_ADDR_PER_BUTTERFLY + SCALAR_LOOP_PER_BUTTERFLY)
    )
    issue = machine.issue_cycles(per_transform_instr * transforms)
    trig_calls = nontrivial * transforms
    machine.trig_cycles(trig_calls)  # emits the libm span when traced
    dep_ops = mem_census.flops * DEPENDENT_FLOP_FRACTION * transforms

    w_flops, w_mem, w_addr = _weight_terms(workload)
    weight_issue = machine.issue_cycles(
        (w_flops + w_mem + w_addr) * workload.n_subbands
    )
    weight_dep_ops = w_flops * DEPENDENT_FLOP_FRACTION * workload.n_subbands
    # Emit the same two stall spans as the historical per-cell path.
    machine.scalar_fp_stall_cycles(dep_ops)
    machine.scalar_fp_stall_cycles(weight_dep_ops)

    channel_words = (
        (workload.n_channels + workload.n_mains) * workload.samples * 2
    )
    stream_lines = channel_words / machine.config.l1_line_words

    channels = make_jammed_channels(
        workload.samples, workload.n_mains, workload.n_aux, seed=seed
    )
    result = cslc_reference(channels, workload, plan=plan)
    oracle = cslc_oracle(channels, workload, result.weights)
    ok = functional_match(result.outputs, oracle)

    return {
        "workload": workload,
        "machine": machine,
        "issue": issue + weight_issue,
        "trig_calls": trig_calls,
        "dep_ops": dep_ops,
        "weight_dep_ops": weight_dep_ops,
        "stream_lines": stream_lines,
        "ops": workload.op_counts(plan),
        "output": result.outputs,
        "ok": ok,
        "cancellation_db": result.cancellation_db,
    }


def _evaluate_scalar(
    s: Dict, cals: Sequence[Calibration]
) -> List[KernelRun]:
    """Assemble one scalar cycle ledger per calibration from the shared
    censuses; latency/stall constants vary cell to cell."""
    machine = s["machine"]

    trig_cost = batch.cal_vector(cals, "ppc", "trig_call_cycles")
    fp_stall = batch.cal_vector(cals, "ppc", "fp_dependency_stall")
    l2_hit = batch.cal_vector(cals, "ppc", "l2_hit_cycles")
    dram = batch.cal_vector(cals, "ppc", "dram_latency_cycles")

    trig = s["trig_calls"] * trig_cost
    stalls = s["dep_ops"] * fp_stall + s["weight_dep_ops"] * fp_stall
    cache = s["stream_lines"] * (l2_hit + dram)

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        breakdown = CycleBreakdown(
            {
                "twiddle recomputation": float(trig[i]),
                "issue": s["issue"],
                "fp dependency stalls": float(stalls[i]),
                "streaming misses": float(cache[i]),
            }
        )
        runs.append(
            KernelRun(
                kernel="cslc",
                machine="ppc",
                spec=machine.spec,
                breakdown=breakdown,
                ops=s["ops"],
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "cancellation_db": s["cancellation_db"],
                    "trig_fraction": (
                        float(trig[i]) / breakdown.total
                        if breakdown.total
                        else 0.0
                    ),
                },
            )
        )
    return runs


def run_altivec(
    workload: Optional[CSLCWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """AltiVec PPC CSLC; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate_altivec(
        _structure_altivec(workload, cal, seed), [cal]
    )[0]


def run_altivec_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CSLCWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One AltiVec :class:`KernelRun` per calibration, sharing one
    structure pass (vector-op censuses, functional transforms)."""
    cals = list(calibrations)
    batch.require_uniform_structure("ppc", cals)
    return _evaluate_altivec(
        _structure_altivec(workload, cals[0], seed), cals
    )


def _structure_altivec(
    workload: Optional[CSLCWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    """The calibration-independent pass: the radix-4 vector censuses,
    issue time, stall group counts, and the functional result."""
    workload = workload or canonical_cslc()
    machine = PpcMachine(calibration=cal.ppc)
    plan = FFTPlan(workload.subband_len)  # hand code uses the radix-4 plan

    transforms = workload.transforms
    width = machine.config.altivec_width
    mem_census = plan.memory_census()
    shuffle_census = plan.shuffle_census()
    butterflies = sum(s.butterflies for s in plan.stages)

    vec_flops = mem_census.flops / width
    vec_perms = shuffle_census.permutes / width
    vec_loads = mem_census.loads / width
    vec_stores = mem_census.stores / width
    align_perms = vec_loads  # one vperm per unaligned vector load
    vec_ops = vec_flops + vec_perms + vec_loads + vec_stores + align_perms

    scalar_bookkeeping = butterflies * SCALAR_ADDR_PER_BUTTERFLY
    issue = transforms * (
        machine.vector_issue_cycles(vec_ops)
        + machine.issue_cycles(scalar_bookkeeping)
    )

    w_flops, w_mem, w_addr = _weight_terms(workload)
    weight_vec_ops = (w_flops + w_mem) / width
    weight_issue = workload.n_subbands * (
        machine.vector_issue_cycles(weight_vec_ops)
        + machine.issue_cycles(w_addr)
    )
    # Emit the same two stall spans as the historical per-cell path.
    machine.vector_stall_cycles(butterflies)
    machine.vector_stall_cycles(workload.subband_len / width)

    channel_words = (
        (workload.n_channels + workload.n_mains) * workload.samples * 2
    )
    stream_lines = channel_words / machine.config.l1_line_words

    channels = make_jammed_channels(
        workload.samples, workload.n_mains, workload.n_aux, seed=seed
    )
    result = cslc_reference(channels, workload, plan=plan)
    oracle = cslc_oracle(channels, workload, result.weights)
    ok = functional_match(result.outputs, oracle)

    return {
        "workload": workload,
        "machine": machine,
        "issue": issue + weight_issue,
        "transforms": transforms,
        "butterflies": butterflies,
        "weight_groups": workload.subband_len / width,
        "stream_lines": stream_lines,
        "ops": workload.op_counts(plan),
        "output": result.outputs,
        "ok": ok,
        "cancellation_db": result.cancellation_db,
    }


def _evaluate_altivec(
    s: Dict, cals: Sequence[Calibration]
) -> List[KernelRun]:
    """Assemble one AltiVec cycle ledger per calibration."""
    workload = s["workload"]
    machine = s["machine"]

    vec_stall = batch.cal_vector(
        cals, "ppc", "vector_dependency_stall_per_butterfly"
    )
    l2_hit = batch.cal_vector(cals, "ppc", "l2_hit_cycles")
    dram = batch.cal_vector(cals, "ppc", "dram_latency_cycles")

    stalls = s["transforms"] * (s["butterflies"] * vec_stall)
    weight_stalls = workload.n_subbands * (s["weight_groups"] * vec_stall)
    cache = s["stream_lines"] * (l2_hit + dram)

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        total_stalls = float(stalls[i]) + float(weight_stalls[i])
        breakdown = CycleBreakdown(
            {
                "issue": s["issue"],
                "vector dependency stalls": total_stalls,
                "streaming misses": float(cache[i]),
            }
        )
        runs.append(
            KernelRun(
                kernel="cslc",
                machine="altivec",
                spec=machine.altivec_spec,
                breakdown=breakdown,
                ops=s["ops"],
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "cancellation_db": s["cancellation_db"],
                    "stall_fraction": (
                        total_stalls / breakdown.total
                        if breakdown.total
                        else 0.0
                    ),
                },
            )
        )
    return runs
