"""Beam steering on VIRAM (§3.3, §4.4).

"we used hand-vectorization of the main portion of the beam steering on
VIRAM.  Since the same processing is performed for each data, the data is
fed to the vector unit, which computes output data."  §4.4: "the lower
bound of the computation time is 56% of the simulation time.  The
difference ... comes from waiting for the results from previous vector
operations and the cycles needed to initialize the vector operations."

Model:

* ``compute`` — the 5-additions-plus-1-shift census per output, issued at
  8 element-ops/cycle (the paper's lower bound).
* ``startup`` — exposed dead time per vector instruction: the five summed
  terms form a dependency chain of short (VL=64) vector instructions, so
  each instruction exposes the calibrated dependency/initialisation gap.
* memory — the two calibration-table reads per output are indexed loads
  at the 4-word/cycle address-generator rate and the result store is
  unit-stride; both fit entirely under the compute+startup time and are
  reported as hidden in the metrics (the paper's analysis likewise
  attributes no exposed memory time on this kernel).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.base import KernelRun
from repro.arch.viram.machine import ViramMachine
from repro.calibration import Calibration
from repro.kernels.beam_steering import (
    BeamSteeringWorkload,
    beam_steering_reference,
    make_tables,
)
from repro.kernels.workloads import canonical_beam_steering
from repro.mappings import batch
from repro.mappings.base import resolve_calibration
from repro.sim.accounting import CycleBreakdown


def run(
    workload: Optional[BeamSteeringWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
) -> KernelRun:
    """Run the VIRAM beam steering; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(_structure(workload, cal, seed), [cal])[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[BeamSteeringWorkload] = None,
    seed: int = 0,
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (op census, issue times, reference output)."""
    cals = list(calibrations)
    batch.require_uniform_structure("viram", cals)
    return _evaluate(_structure(workload, cals[0], seed), cals)


def _structure(
    workload: Optional[BeamSteeringWorkload],
    cal: Calibration,
    seed: int,
) -> Dict:
    """The calibration-independent pass: op census, issue-rate times, the
    instruction count, and the reference output."""
    workload = workload or canonical_beam_steering()
    machine = ViramMachine(calibration=cal.viram)

    ops = workload.op_counts()
    arith = ops.arithmetic  # 5 adds + 1 shift per output

    compute = machine.vfu_cycles(arith)

    # Memory issue time (indexed table reads + unit-stride stores).
    gather_words = ops.loads
    store_words = ops.stores
    memory_issue = (
        gather_words / machine.config.strided_words_per_cycle
        + store_words / machine.config.seq_words_per_cycle
    )

    # Instruction stream: arithmetic + gathers + stores at VL=64.
    instructions = machine.instruction_count(
        arith + gather_words + store_words
    )
    machine.dead_time(instructions)  # emits the startup span when traced

    tables = make_tables(workload, seed)
    output = beam_steering_reference(workload, tables)

    return {
        "workload": workload,
        "machine": machine,
        "ops": ops,
        "compute": compute,
        "memory_issue": memory_issue,
        "instructions": instructions,
        "output": output,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration from the shared
    structure; only the per-instruction dead time varies cell to cell."""
    workload = s["workload"]
    machine = s["machine"]
    compute = s["compute"]
    memory_issue = s["memory_issue"]

    dead_time = batch.cal_vector(cals, "viram", "vector_dead_time")
    startup = s["instructions"] * dead_time

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        hidden_memory = min(memory_issue, compute + float(startup[i]))
        exposed_memory = memory_issue - hidden_memory

        breakdown = CycleBreakdown(
            {
                "compute": compute,
                "startup": float(startup[i]),
                "memory": exposed_memory,
            }
        )

        total = breakdown.total
        runs.append(
            KernelRun(
                kernel="beam_steering",
                machine="viram",
                spec=machine.spec,
                breakdown=breakdown,
                ops=s["ops"],
                output=s["output"],
                functional_ok=True,  # reference is the definition
                metrics={
                    "outputs": workload.outputs,
                    # §4.4: "the lower bound of the computation time is
                    # 56% of the simulation time".
                    "compute_lower_bound_fraction": (
                        compute / total if total else 0.0
                    ),
                    "memory_hidden_cycles": hidden_memory,
                    "vector_instructions": s["instructions"],
                },
            )
        )
    return runs
