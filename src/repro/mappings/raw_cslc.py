"""CSLC on Raw (§3.2, §4.3).

"The Raw implementation does independent data-parallel FFTs. ... a C
implementation of the radix-2 FFT is used for Raw because it provided
better performance than the radix-4 FFT because of register spilling."
§4.3: the local memories cache the working set ("less than 10% of the
execution time is spent on memory stalls"); "about 26% of the cycles on
Raw are consumed by load and store instructions.  The remaining cycles
are consumed by address and index calculations and loop overhead
instructions."; with 73 sub-band sets on 16 tiles "about 8% of CPU cycles
are idle due to load balancing", and the paper reports the
perfect-balance extrapolation.

Model: each tile runs a scalar radix-2 CSLC set (four FFTs, weight
application, two IFFTs) as an instruction-category stream derived from
the exact FFT structure — flops, the memory-to-memory load/store census,
calibrated per-butterfly address and loop instructions — at one
instruction per cycle, plus the calibrated local-memory stall fraction.

Options reproduce §4.3's what-ifs:

* ``balanced`` (default True) — the perfect-load-balance extrapolation;
  False gives the real 5-versus-4-sets makespan.
* ``streamed_fft`` — route FFT operands over the static network: load/
  store instructions and cache stalls disappear ("about 70% of FFT
  performance improvement").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.base import KernelRun
from repro.arch.raw.dynamic import cslc_set_delivery
from repro.arch.raw.machine import RawMachine
from repro.calibration import Calibration
from repro.kernels.cslc import CSLCWorkload, cslc_oracle, cslc_reference
from repro.kernels.fft import FFTPlan, radix2_radices
from repro.kernels.signal import make_jammed_channels
from repro.kernels.workloads import canonical_cslc
from repro.mappings import batch
from repro.mappings.base import functional_match, resolve_calibration
from repro.sim.accounting import CycleBreakdown
from repro.units import WORD_BYTES


def _set_instruction_census(workload: CSLCWorkload, plan: FFTPlan) -> dict:
    """Instruction categories for one sub-band set on one tile."""
    transforms = workload.n_channels + workload.n_mains
    mem = plan.memory_census()
    butterflies = sum(s.butterflies for s in plan.stages)

    flops = mem.flops * transforms
    loadstore = mem.memory_ops * transforms
    addressing = butterflies * transforms * 5.0  # filled from calibration
    loop = butterflies * transforms * 3.0

    # Weight application: per main per bin, n_aux complex MACs operating
    # memory-to-memory.
    bins = workload.subband_len
    w_flops = workload.n_mains * bins * workload.n_aux * 8.0
    w_mem = workload.n_mains * bins * (workload.n_aux * 4.0 + 4.0)
    w_addr = workload.n_mains * bins * 2.0
    return {
        "flops": flops + w_flops,
        "loadstore": loadstore + w_mem,
        "addressing": addressing + w_addr,
        "loop": loop,
        "butterflies": butterflies * transforms,
    }


def run(
    workload: Optional[CSLCWorkload] = None,
    calibration: Optional[Calibration] = None,
    seed: int = 0,
    balanced: bool = True,
    streamed_fft: bool = False,
) -> KernelRun:
    """Run the Raw CSLC; returns a :class:`KernelRun`."""
    cal = resolve_calibration(calibration)
    return _evaluate(
        _structure(workload, cal, seed, balanced, streamed_fft), [cal]
    )[0]


def run_batch(
    calibrations: Sequence[Calibration],
    workload: Optional[CSLCWorkload] = None,
    seed: int = 0,
    balanced: bool = True,
    streamed_fft: bool = False,
) -> List[KernelRun]:
    """One :class:`KernelRun` per calibration, sharing one structure pass
    (instruction census, delivery simulation, functional transforms)."""
    cals = list(calibrations)
    batch.require_uniform_structure("raw", cals)
    return _evaluate(
        _structure(workload, cals[0], seed, balanced, streamed_fft), cals
    )


def _structure(
    workload: Optional[CSLCWorkload],
    cal: Calibration,
    seed: int,
    balanced: bool,
    streamed_fft: bool,
) -> Dict:
    """The calibration-independent pass: the instruction-category
    censuses, capacity allocation, dynamic-network delivery simulation,
    and the functional result."""
    workload = workload or canonical_cslc()
    machine = RawMachine(calibration=cal.raw)
    plan = FFTPlan(workload.subband_len, radix2_radices(workload.subband_len))

    # One set's working data must fit a tile's local memory.
    set_words = (
        (workload.n_channels + workload.n_mains) * 2 * workload.subband_len
        + workload.n_mains * workload.n_aux * 2 * workload.subband_len
        + 2 * workload.subband_len  # twiddle table
    )
    machine.tile_memories[0].allocate("cslc-set", set_words * WORD_BYTES)

    census = _set_instruction_census(workload, plan)
    butterflies = census["butterflies"]
    addr_extra = census["addressing"] - butterflies * 5.0
    loadstore = census["loadstore"]
    flops = census["flops"]

    if streamed_fft:
        # §4.3: streaming over the static network eliminates the FFT's
        # load/store instructions and its cache stalls.
        loadstore = census["loadstore"] - plan.memory_census().memory_ops * (
            workload.n_channels + workload.n_mains
        )

    # Emit the structure-cal issue/stall spans (batch-of-one tracing).
    addressing = butterflies * machine.cal.fft_addr_ops_per_butterfly + (
        addr_extra
    )
    loop = butterflies * machine.cal.fft_loop_ops_per_butterfly
    busy = machine.tile_cycles(flops + loadstore + addressing + loop)
    if not streamed_fft:
        machine.cache_stall_cycles(busy)

    # §2.4: MIMD-mode data reaches local memories "through cache misses"
    # over the dynamic network; event-simulate one working-set round to
    # confirm delivery bandwidth sits well inside the stall budget.
    delivery = cslc_set_delivery(
        config=machine.config, words_per_set=set_words
    )

    channels = make_jammed_channels(
        workload.samples, workload.n_mains, workload.n_aux, seed=seed
    )
    result = cslc_reference(channels, workload, plan=plan)
    oracle = cslc_oracle(channels, workload, result.weights)
    ok = functional_match(result.outputs, oracle)

    # §4.3 compares against the radix-4 operation basis ("care should be
    # given when the performance of the Raw on CSLC is compared").
    radix4_plan = FFTPlan(workload.subband_len)
    return {
        "workload": workload,
        "machine": machine,
        "balanced": balanced,
        "streamed_fft": streamed_fft,
        "butterflies": butterflies,
        "addr_extra": addr_extra,
        "flops": flops,
        "loadstore": loadstore,
        "delivery_makespan": delivery.makespan,
        "radix4_flops": workload.op_counts(radix4_plan).flops,
        "radix2_over_radix4_ops": (
            plan.memory_census().total / radix4_plan.memory_census().total
        ),
        "ops": workload.op_counts(plan),
        "output": result.outputs,
        "ok": ok,
        "cancellation_db": result.cancellation_db,
    }


def _evaluate(s: Dict, cals: Sequence[Calibration]) -> List[KernelRun]:
    """Assemble one cycle ledger per calibration: per-butterfly overhead
    constants and the cache-stall fraction vary cell to cell."""
    workload = s["workload"]
    machine = s["machine"]
    balanced = s["balanced"]
    streamed_fft = s["streamed_fft"]
    butterflies = s["butterflies"]
    flops = s["flops"]
    loadstore = s["loadstore"]
    n_sets = workload.n_subbands
    tiles = machine.config.tiles

    addr_ops = batch.cal_vector(cals, "raw", "fft_addr_ops_per_butterfly")
    loop_ops = batch.cal_vector(cals, "raw", "fft_loop_ops_per_butterfly")
    stall_fraction = batch.cal_vector(cals, "raw", "cache_stall_fraction")

    distribution = machine.distribute(n_sets)
    imbalance_frac = (
        1.0 - (n_sets / tiles) / max(distribution)
        if max(distribution)
        else 0.0
    )

    runs: List[KernelRun] = []
    for i in range(len(cals)):
        addressing = butterflies * float(addr_ops[i]) + s["addr_extra"]
        loop = butterflies * float(loop_ops[i])
        busy_per_set = flops + loadstore + addressing + loop
        if streamed_fft:
            stall_per_set = 0.0
        else:
            f = float(stall_fraction[i])
            stall_per_set = busy_per_set * f / (1.0 - f)
        per_set = busy_per_set + stall_per_set

        if balanced:
            idle = 0.0
        else:
            makespan = machine.imbalance_makespan(per_set, n_sets)
            idle = makespan - machine.balanced_makespan(per_set, n_sets)

        stall_total = stall_per_set * n_sets / tiles

        breakdown = CycleBreakdown(
            {
                "flops": flops * n_sets / tiles,
                "load/store": loadstore * n_sets / tiles,
                "addressing": addressing * n_sets / tiles,
                "loop overhead": loop * n_sets / tiles,
                "cache stalls": stall_total,
            }
        )
        if not balanced:
            breakdown.charge("load-imbalance idle", idle)

        delivery_fraction = (
            s["delivery_makespan"] / per_set if per_set else 0.0
        )

        total = breakdown.total
        runs.append(
            KernelRun(
                kernel="cslc",
                machine="raw",
                spec=machine.spec,
                breakdown=breakdown,
                ops=s["ops"],
                output=s["output"],
                functional_ok=s["ok"],
                metrics={
                    "cancellation_db": s["cancellation_db"],
                    "balanced": balanced,
                    "streamed_fft": streamed_fft,
                    # §4.3: "Raw achieves about 31.4% of the peak"
                    # (radix-4 basis).
                    "percent_of_peak_radix4_basis": (
                        s["radix4_flops"]
                        / (machine.spec.flops_per_cycle * total)
                        if total
                        else 0.0
                    ),
                    # §4.3: "about 26% of the cycles ... are consumed by
                    # load and store instructions".
                    "loadstore_fraction": (
                        breakdown.get("load/store") / total if total else 0.0
                    ),
                    "cache_stall_fraction": (
                        breakdown.get("cache stalls") / total
                        if total
                        else 0.0
                    ),
                    # Dynamic-network delivery of one working-set round
                    # relative to one set's compute time: must sit inside
                    # the calibrated stall fraction for the §4.3 "<10%
                    # stalls" claim to hold.
                    "dynamic_delivery_fraction": delivery_fraction,
                    # §4.3: "about 8% of CPU cycles are idle due to load
                    # balancing" in the unbalanced schedule.
                    "imbalance_idle_fraction": imbalance_frac,
                    # §4.3: "The number of operations (including loads
                    # and stores) in the radix-2 FFT is about 1.5 the
                    # number in the radix-4 FFT."
                    "radix2_over_radix4_ops": s["radix2_over_radix4_ops"],
                },
            )
        )
    return runs
