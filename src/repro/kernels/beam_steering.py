"""Beam steering: phased-array phase computation (§3.3, §4.4).

"Beam steering is a radar-processing kernel that directs a phased-array
radar without physically rotating the antenna.  The computation of the
phase for each antenna element stresses memory bandwidth and latency
because large tables are used for calibration tables.  Arithmetic
operations are additions and shift operations. ... The number of antenna
elements is 1608.  Each element can direct the signal up to 4 directions
per dwell."

§4.4 gives the exact per-output census this module reproduces: "Beam
steering has small numbers of memory accesses (2 reads and 1 write) and
computations (5 additions and 1 shift) per output data."  We realise that
census with six summed terms (five additions), a right shift that
quantises the accumulated phase, and two calibration-table reads (the
coarse per-element table and the fine per-element-per-direction table);
the steering bases, element position phases, and dwell compensation live
in registers/streams.

The dwell count is not stated in the paper; it defaults to 4 (see
DESIGN.md §4) and is a workload parameter everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kernels.opcount import OpCounts
from repro.units import WORD_BYTES


@dataclass(frozen=True)
class BeamSteeringWorkload:
    """Beam-steering problem size (§3.3 defaults, dwells per DESIGN.md §4)."""

    elements: int = 1608
    directions: int = 4
    dwells: int = 4
    accumulator_bits: int = 24
    phase_bits: int = 16

    def __post_init__(self) -> None:
        if min(self.elements, self.directions, self.dwells) < 1:
            raise ConfigError(f"workload dimensions must be positive: {self}")
        if not 0 < self.phase_bits <= self.accumulator_bits:
            raise ConfigError(
                f"phase_bits must be in (0, {self.accumulator_bits}]"
            )

    @property
    def outputs(self) -> int:
        """Phase words produced per interval."""
        return self.elements * self.directions * self.dwells

    @property
    def shift(self) -> int:
        """Right-shift that quantises the accumulator to phase words."""
        return self.accumulator_bits - self.phase_bits

    @property
    def coarse_table_words(self) -> int:
        return self.elements

    @property
    def fine_table_words(self) -> int:
        return self.elements * self.directions

    @property
    def table_bytes(self) -> int:
        return (self.coarse_table_words + self.fine_table_words) * WORD_BYTES

    def op_counts(self) -> OpCounts:
        """§4.4's census: per output, 5 adds + 1 shift, 2 reads + 1 write."""
        n = float(self.outputs)
        return OpCounts(
            adds=5 * n, shifts=n, loads=2 * n, stores=n
        )


@dataclass(frozen=True)
class BeamSteeringTables:
    """Input data for one interval.

    ``coarse``: (elements,) per-element calibration (table read 1).
    ``fine``: (elements, directions) per-element-per-direction calibration
    (table read 2).
    ``pos``: (elements,) element-position phase slope (streamed/register).
    ``steer``: (dwells, directions) steering base per direction per dwell.
    ``temp``: (dwells,) per-dwell compensation (e.g. thermal drift).
    All values are integer phase units in the accumulator's precision.
    """

    coarse: np.ndarray
    fine: np.ndarray
    pos: np.ndarray
    steer: np.ndarray
    temp: np.ndarray

    def validate(self, workload: BeamSteeringWorkload) -> None:
        expected = {
            "coarse": (workload.elements,),
            "fine": (workload.elements, workload.directions),
            "pos": (workload.elements,),
            "steer": (workload.dwells, workload.directions),
            "temp": (workload.dwells,),
        }
        for name, shape in expected.items():
            array = getattr(self, name)
            if array.shape != shape:
                raise ConfigError(
                    f"table {name!r} has shape {array.shape}, expected {shape}"
                )
            if not np.issubdtype(array.dtype, np.integer):
                raise ConfigError(f"table {name!r} must be integer-typed")


def make_tables(
    workload: BeamSteeringWorkload, seed: int = 0
) -> BeamSteeringTables:
    """Deterministic synthetic calibration data for ``workload``."""
    rng = np.random.default_rng(seed)
    limit = 1 << (workload.accumulator_bits - 3)
    coarse = rng.integers(0, limit, workload.elements, dtype=np.int64)
    fine = rng.integers(
        0, limit, (workload.elements, workload.directions), dtype=np.int64
    )
    pos = rng.integers(0, limit, workload.elements, dtype=np.int64)
    steer = rng.integers(
        0, limit, (workload.dwells, workload.directions), dtype=np.int64
    )
    temp = rng.integers(0, limit, workload.dwells, dtype=np.int64)
    return BeamSteeringTables(
        coarse=coarse, fine=fine, pos=pos, steer=steer, temp=temp
    )


def beam_steering_reference(
    workload: BeamSteeringWorkload, tables: BeamSteeringTables
) -> np.ndarray:
    """Compute every phase word for one interval.

    Per output ``(t, d, e)`` — exactly §4.4's five additions and one
    shift::

        acc   = steer[t,d] + pos[e]       # add 1
        acc  += coarse[e]                 # add 2   (table read 1)
        acc  += fine[e,d]                 # add 3   (table read 2)
        acc  += temp[t]                   # add 4
        acc  += ROUND                     # add 5   (rounding bias)
        phase = (acc >> shift) mod 2^phase_bits

    Returns an int64 array of shape (dwells, directions, elements) holding
    ``phase_bits``-bit values.
    """
    tables.validate(workload)
    shift = workload.shift
    rounding = (1 << shift) >> 1 if shift else 0
    mask = (1 << workload.phase_bits) - 1
    acc = (
        tables.steer[:, :, None]
        + tables.pos[None, None, :]
        + tables.coarse[None, None, :]
        + tables.fine.T[None, :, :]
        + tables.temp[:, None, None]
        + rounding
    )
    return (acc >> shift) & mask
