"""Fast Fourier transforms built from scratch, with exact op censuses.

The CSLC kernel (§3.2) spends most of its time in 128-point FFTs, and the
paper is explicit about which algorithm runs where: "a parallelized
hand-optimized radix-4 FFT is used for VIRAM and Imagine ... since the size
of the FFT for the CSLC is 128, which is not [a] power of four, we used
three radix-4 stages and one radix-2 stage", while Raw uses "a C
implementation of the radix-2 FFT" whose operation count is "about 1.5
[times] the number in the radix-4 FFT".  This module implements the
mixed-radix decimation-in-time Cooley-Tukey algorithm for radix
factorizations over {2, 4}, producing

* functional results (validated against ``numpy.fft`` in the tests), and
* exact per-stage structure (:class:`StageInfo`) from which arithmetic,
  memory, and shuffle censuses are derived — instrumented execution and
  analytic counts are cross-checked in the tests.

Twiddle-factor accounting follows the classic convention: multiplication
by W = 1 is free, by W in {-1, i, -i} is a sign/swap (0 flops), and any
other twiddle is a full complex multiply (4 real multiplies + 2 real
additions).  The radix-2 butterfly core is 2 complex additions (4 flops);
the radix-4 core is 8 complex additions (16 flops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kernels.opcount import (
    COMPLEX_ADD_FLOPS,
    COMPLEX_MUL_ADDS,
    COMPLEX_MUL_MULS,
    OpCounts,
)

#: Real additions in the radix-r butterfly core (after twiddle multiplies).
CORE_COMPLEX_ADDS = {2: 2, 4: 8}


def default_radices(n: int) -> Tuple[int, ...]:
    """The paper's factorization: radix-4 stages plus one radix-2 stage.

    For ``n`` a power of four this is all radix-4; for ``n`` twice a power
    of four (like 128) it is radix-4 stages followed by a final radix-2
    stage ("three radix-4 stages and one radix-2 stage" for N=128).
    """
    if n < 1 or n & (n - 1):
        raise ConfigError(f"FFT size must be a power of two, got {n}")
    radices: List[int] = []
    remaining = n
    while remaining % 4 == 0:
        radices.append(4)
        remaining //= 4
    if remaining == 2:
        radices.append(2)
        remaining //= 2
    if remaining != 1:
        raise ConfigError(f"cannot factor {n} over radices {{2, 4}}")
    return tuple(radices)


def radix2_radices(n: int) -> Tuple[int, ...]:
    """All-radix-2 factorization (Raw's C FFT, §3.2)."""
    if n < 1 or n & (n - 1):
        raise ConfigError(f"FFT size must be a power of two, got {n}")
    return tuple([2] * (n.bit_length() - 1))


@dataclass(frozen=True)
class StageInfo:
    """Structure of one combine stage of the mixed-radix DIT recursion.

    ``size`` is the sub-transform length being combined at this stage,
    ``span`` the distance between butterfly inputs (``size // radix``),
    ``copies`` how many independent sub-transforms run this stage, and
    ``butterflies`` the stage-wide butterfly count (``copies * span``).
    Twiddle tallies distinguish unity (free), trivial (±1, ±i: sign/swap),
    and non-trivial (full complex multiply) factors.
    """

    radix: int
    size: int
    span: int
    copies: int
    butterflies: int
    unity_twiddles: int
    trivial_twiddles: int
    nontrivial_twiddles: int

    @property
    def core_adds(self) -> int:
        """Complex additions in this stage's butterfly cores."""
        return self.butterflies * CORE_COMPLEX_ADDS[self.radix]

    @property
    def flops(self) -> float:
        """Real floating-point operations in this stage."""
        return (
            self.core_adds * COMPLEX_ADD_FLOPS
            + self.nontrivial_twiddles * (COMPLEX_MUL_MULS + COMPLEX_MUL_ADDS)
        )


def _twiddle_tallies(size: int, radix: int) -> Tuple[int, int, int]:
    """(unity, trivial, nontrivial) twiddle counts for one combine of
    ``radix`` sub-transforms of length ``size // radix``."""
    span = size // radix
    unity = trivial = nontrivial = 0
    for j in range(1, radix):
        for k in range(span):
            t = (j * k) % size
            if t == 0:
                unity += 1
            elif (t * 4) % size == 0:
                trivial += 1
            else:
                nontrivial += 1
    return unity, trivial, nontrivial


def stage_infos(n: int, radices: Sequence[int]) -> Tuple[StageInfo, ...]:
    """Per-stage structure for a DIT plan of ``n`` over ``radices``.

    Stages are listed outermost combine first (largest span first), the
    order a decimation-in-time implementation executes them *last*; the
    order does not affect censuses.
    """
    product = 1
    for r in radices:
        if r not in CORE_COMPLEX_ADDS:
            raise ConfigError(f"unsupported radix {r}; supported: 2, 4")
        product *= r
    if product != n:
        raise ConfigError(
            f"radices {tuple(radices)} multiply to {product}, expected {n}"
        )
    stages: List[StageInfo] = []
    size = n
    copies = 1
    for r in radices:
        span = size // r
        unity, trivial, nontrivial = _twiddle_tallies(size, r)
        stages.append(
            StageInfo(
                radix=r,
                size=size,
                span=span,
                copies=copies,
                butterflies=copies * span,
                unity_twiddles=copies * unity,
                trivial_twiddles=copies * trivial,
                nontrivial_twiddles=copies * nontrivial,
            )
        )
        copies *= r
        size = span
    return tuple(stages)


class _InstrumentCounter:
    """Mutable tallies filled in during an instrumented execution."""

    def __init__(self) -> None:
        self.complex_adds = 0
        self.nontrivial_muls = 0
        self.trivial_muls = 0


class FFTPlan:
    """A reusable mixed-radix FFT of fixed size and factorization.

    Parameters
    ----------
    n:
        Transform length (power of two).
    radices:
        Stage radices over {2, 4}, outermost first.  Defaults to the
        paper's radix-4-then-radix-2 factorization
        (:func:`default_radices`).

    Examples
    --------
    >>> plan = FFTPlan(128)
    >>> [s.radix for s in plan.stages]
    [4, 4, 4, 2]
    >>> plan128_radix2 = FFTPlan(128, radix2_radices(128))
    >>> plan128_radix2.flops() > plan.flops()  # the radix-4 advantage
    True
    >>> r2, r4 = plan128_radix2.memory_census(), plan.memory_census()
    >>> round(r2.total / r4.total, 2)  # the paper's ~1.5x incl. loads/stores
    1.36
    """

    def __init__(self, n: int, radices: Optional[Sequence[int]] = None) -> None:
        if radices is None:
            radices = default_radices(n)
        self.n = int(n)
        self.radices: Tuple[int, ...] = tuple(int(r) for r in radices)
        self.stages: Tuple[StageInfo, ...] = stage_infos(self.n, self.radices)
        self._twiddle_cache: dict = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        x: np.ndarray,
        inverse: bool = False,
        _counter: Optional[_InstrumentCounter] = None,
    ) -> np.ndarray:
        """Transform ``x`` (length ``n``); returns complex128.

        With ``inverse=True`` computes the unitary-pair inverse
        (``ifft(fft(x)) == x``), implemented by conjugation so the
        butterfly structure and op census are identical to the forward
        transform (plus the final 1/n scaling, which is not counted — the
        paper's CSLC folds it into the weight stage).
        """
        data = np.asarray(x, dtype=np.complex128)
        if data.shape != (self.n,):
            raise ConfigError(
                f"expected input of shape ({self.n},), got {data.shape}"
            )
        if inverse:
            result = self._recurse(np.conj(data), self.radices, _counter)
            return np.conj(result) / self.n
        return self._recurse(data, self.radices, _counter)

    def execute_batch(
        self, x: np.ndarray, inverse: bool = False
    ) -> np.ndarray:
        """Transform every row of ``x`` (shape ``(..., n)``) at once.

        Identical mathematics to :meth:`execute` — the same recursion
        runs vectorised over the leading axes — so the op census per
        transform is unchanged; this is purely a host-side speedup for
        workloads with many transforms (the CSLC's 438 per interval).
        """
        data = np.asarray(x, dtype=np.complex128)
        if data.shape[-1] != self.n:
            raise ConfigError(
                f"expected trailing axis of {self.n}, got {data.shape}"
            )
        if inverse:
            result = self._recurse(np.conj(data), self.radices, None)
            return np.conj(result) / self.n
        return self._recurse(data, self.radices, None)

    def _recurse(
        self,
        x: np.ndarray,
        radices: Tuple[int, ...],
        counter: Optional[_InstrumentCounter],
    ) -> np.ndarray:
        n = x.shape[-1]
        if not radices:
            if n != 1:
                raise ConfigError("radix list exhausted before size 1")
            return x.copy()
        r = radices[0]
        span = n // r
        subs = [
            self._recurse(x[..., j::r], radices[1:], counter)
            for j in range(r)
        ]
        return self._combine(subs, n, r, span, counter)

    def _combine(
        self,
        subs: List[np.ndarray],
        size: int,
        radix: int,
        span: int,
        counter: Optional[_InstrumentCounter],
    ) -> np.ndarray:
        k = np.arange(span)
        twiddled: List[np.ndarray] = [subs[0]]
        for j in range(1, radix):
            key = (size, radix, j)
            w = self._twiddle_cache.get(key)
            if w is None:
                w = np.exp(-2j * np.pi * j * k / size)
                self._twiddle_cache[key] = w
            twiddled.append(w * subs[j])
            if counter is not None:
                t = (j * k) % size
                nontrivial = int(np.count_nonzero((t * 4) % size))
                trivial = int(np.count_nonzero(t)) - nontrivial
                counter.nontrivial_muls += nontrivial
                counter.trivial_muls += trivial

        out = np.empty(subs[0].shape[:-1] + (size,), dtype=np.complex128)
        if radix == 2:
            t0, t1 = twiddled
            out[..., :span] = t0 + t1
            out[..., span:] = t0 - t1
            if counter is not None:
                counter.complex_adds += 2 * span
        else:  # radix == 4
            t0, t1, t2, t3 = twiddled
            a = t0 + t2
            b = t0 - t2
            c = t1 + t3
            d = -1j * (t1 - t3)  # multiply by -i: swap/negate, no flops
            out[..., 0 * span : 1 * span] = a + c
            out[..., 1 * span : 2 * span] = b + d
            out[..., 2 * span : 3 * span] = a - c
            out[..., 3 * span : 4 * span] = b - d
            if counter is not None:
                counter.complex_adds += 8 * span
        return out

    def execute_instrumented(
        self, x: np.ndarray, inverse: bool = False
    ) -> Tuple[np.ndarray, OpCounts]:
        """Transform ``x`` while counting operations as they happen.

        Returns ``(result, counts)``; the tests require ``counts`` to equal
        :meth:`op_counts` exactly.
        """
        counter = _InstrumentCounter()
        result = self.execute(x, inverse=inverse, _counter=counter)
        counts = OpCounts(
            adds=counter.complex_adds * COMPLEX_ADD_FLOPS
            + counter.nontrivial_muls * COMPLEX_MUL_ADDS,
            muls=counter.nontrivial_muls * COMPLEX_MUL_MULS,
        )
        return result, counts

    # ------------------------------------------------------------------
    # Censuses
    # ------------------------------------------------------------------

    def op_counts(self) -> OpCounts:
        """Exact arithmetic census of one transform (forward or inverse)."""
        adds = 0.0
        muls = 0.0
        for stage in self.stages:
            adds += stage.core_adds * COMPLEX_ADD_FLOPS
            adds += stage.nontrivial_twiddles * COMPLEX_MUL_ADDS
            muls += stage.nontrivial_twiddles * COMPLEX_MUL_MULS
        return OpCounts(adds=adds, muls=muls)

    def flops(self) -> float:
        """Real arithmetic operations per transform."""
        return self.op_counts().flops

    def memory_census(self) -> OpCounts:
        """Word loads/stores of a memory-to-memory scalar implementation.

        Models the "C implementation" the paper ran on Raw: every butterfly
        loads its ``radix`` complex inputs, loads its non-trivial twiddles,
        and stores its ``radix`` complex outputs — no cross-butterfly
        register reuse.  Word counts (a complex value is two words).
        """
        loads = 0.0
        stores = 0.0
        for stage in self.stages:
            loads += stage.butterflies * stage.radix * 2
            loads += stage.nontrivial_twiddles * 2
            stores += stage.butterflies * stage.radix * 2
        counts = self.op_counts()
        return OpCounts(
            adds=counts.adds, muls=counts.muls, loads=loads, stores=stores
        )

    def shuffle_census(self) -> OpCounts:
        """Vector-shuffle element-operations of a vectorized implementation.

        A hand-vectorized FFT (VIRAM, §2.4/§4.3) interleaves arithmetic
        with data-rearrangement instructions; each butterfly needs its
        ``radix`` inputs aligned into vector lanes and its outputs restored,
        costing two shuffle element-ops per butterfly input.  These are the
        "overhead instructions ... to perform the FFT shuffles" that the
        paper says inflate VIRAM's CSLC cycles by 1.67x.
        """
        permutes = 0.0
        for stage in self.stages:
            permutes += stage.butterflies * stage.radix * 2
        counts = self.op_counts()
        return OpCounts(adds=counts.adds, muls=counts.muls, permutes=permutes)

    def __repr__(self) -> str:
        return f"FFTPlan(n={self.n}, radices={self.radices})"
