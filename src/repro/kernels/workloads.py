"""Canonical (paper-size) and small (test-size) workload parameter sets.

The canonical sizes are §3's: a 1024x1024 corner turn, the 4-channel /
8 K-sample / 73x128-sub-band CSLC, and 1608-element x 4-direction beam
steering.  The small variants preserve every structural property the
models depend on (divisibility by block sizes, exact sub-band tiling,
radix factorisability) at a scale where the slow reference simulators in
the tests remain fast.
"""

from __future__ import annotations

from repro.kernels.beam_steering import BeamSteeringWorkload
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.kernels.cslc import CSLCWorkload


def canonical_corner_turn() -> CornerTurnWorkload:
    """§3.1: 1024 x 1024 matrix of 4-byte elements (4 MB)."""
    return CornerTurnWorkload(rows=1024, cols=1024)


def canonical_cslc() -> CSLCWorkload:
    """§3.2: 2+2 channels, 8 K samples, 73 sub-bands of 128 samples."""
    return CSLCWorkload(
        n_mains=2, n_aux=2, samples=8192, n_subbands=73, subband_len=128
    )


def canonical_beam_steering() -> BeamSteeringWorkload:
    """§3.3: 1608 elements, 4 directions per dwell (4 dwells, DESIGN.md §4)."""
    return BeamSteeringWorkload(elements=1608, directions=4, dwells=4)


def small_corner_turn() -> CornerTurnWorkload:
    """128 x 128: divisible by the 16 and 64 block sizes, trace-simulable."""
    return CornerTurnWorkload(rows=128, cols=128)


def small_cslc() -> CSLCWorkload:
    """2+2 channels, 9 sub-bands of 32 samples tiling 288 samples.

    The sub-band count is deliberately not a multiple of Raw's 16 tiles so
    the load-imbalance accounting (§4.3) is exercised at test size too.
    """
    return CSLCWorkload(
        n_mains=2, n_aux=2, samples=288, n_subbands=9, subband_len=32
    )


def small_beam_steering() -> BeamSteeringWorkload:
    """48 elements x 2 directions x 2 dwells."""
    return BeamSteeringWorkload(elements=48, directions=2, dwells=2)
