"""Dense matrix multiplication (extension kernel).

§2.3 cites Raw's published kernel results: "Several kernels including
matrix multiplication are implemented on Raw ... Raw obtains speedup of
up to 12 relative to single-tile performance on ILP benchmarks.
Speedups greater than 16 can be achieved on streaming benchmarks when
compared to a single-issue load/store RISC architecture because of a
tile's ability to operate on data directly from the networks."

This module provides the workload/reference half of an *extension*
reproduction of that citation (the mapping lives in
:mod:`repro.mappings.raw_matmul`): C = A @ B with a blocked functional
implementation and exact op censuses for both a load/store inner loop
and a network-streamed inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kernels.opcount import OpCounts


@dataclass(frozen=True)
class MatmulWorkload:
    """C[n,m] = A[n,k] @ B[k,m], single-precision."""

    n: int = 64
    k: int = 64
    m: int = 64

    def __post_init__(self) -> None:
        if min(self.n, self.k, self.m) < 1:
            raise ConfigError(f"matmul dimensions must be positive: {self}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate count."""
        return self.n * self.k * self.m

    @property
    def flops(self) -> int:
        """Real floating-point operations (one multiply + one add per
        MAC)."""
        return 2 * self.macs

    def make_inputs(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((self.n, self.k)).astype(np.float32)
        b = rng.standard_normal((self.k, self.m)).astype(np.float32)
        return a, b

    def loadstore_census(self) -> OpCounts:
        """Per-interval census of a blocked load/store inner loop.

        Per MAC: one multiply-add pair (2 flops), one B-element load (the
        A element and the accumulator stay in registers across the inner
        loop), and amortised addressing/loop control of one op per MAC;
        each output is stored once and each A element loaded once per
        B-column block pass (counted as one load per k-row per output
        row, amortised into the per-MAC loads below for simplicity).
        """
        macs = float(self.macs)
        return OpCounts(
            adds=macs,
            muls=macs,
            loads=macs + float(self.n * self.k),
            stores=float(self.n * self.m),
            other=macs,  # addressing + loop control
        )

    def streamed_census(self) -> OpCounts:
        """Census when B streams in from the network registers.

        The load per MAC disappears ("operate on data directly from the
        networks"); a residual quarter-op per MAC of sequencing remains.
        """
        macs = float(self.macs)
        return OpCounts(
            adds=macs,
            muls=macs,
            stores=float(self.n * self.m),
            other=0.25 * macs,
        )


def matmul_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The functional answer (numpy matmul in float64 for stability)."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigError(f"incompatible shapes {a.shape} @ {b.shape}")
    return (a.astype(np.float64) @ b.astype(np.float64)).astype(np.float32)


def blocked_matmul(a: np.ndarray, b: np.ndarray, block: int) -> np.ndarray:
    """Blocked functional implementation (the traversal the mapping
    charges cycles for)."""
    if block < 1:
        raise ConfigError(f"block must be positive, got {block}")
    n, k = a.shape
    k2, m = b.shape
    if k != k2:
        raise ConfigError(f"incompatible shapes {a.shape} @ {b.shape}")
    out = np.zeros((n, m), dtype=np.float64)
    for i0 in range(0, n, block):
        for j0 in range(0, m, block):
            for k0 in range(0, k, block):
                out[i0 : i0 + block, j0 : j0 + block] += (
                    a[i0 : i0 + block, k0 : k0 + block].astype(np.float64)
                    @ b[k0 : k0 + block, j0 : j0 + block].astype(np.float64)
                )
    return out.astype(np.float32)
