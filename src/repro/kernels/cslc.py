"""Coherent side-lobe canceller (CSLC), §3.2.

"CSLC is a radar signal processing kernel used to cancel jammer signals
caused by one or more jammers.  Our CSLC implementation consists of FFTs,
a weight application (multiplication) stage, and IFFTs. ... There are four
input channels: two main channels and two auxiliary channels.  Each channel
has 8K samples per processing interval. ... The data is partitioned into 73
overlapping sub-bands, each of which contains 128 samples, so 128-sample
FFTs are used."

Pipeline per sub-band ``s`` and main channel ``m``::

    M[s]  = FFT(main_m sub-band s)          # one per channel (mains + auxes)
    A[a,s]= FFT(aux_a  sub-band s)
    Out[m,s,k] = M[s,k] - sum_a w[m,a,k] * A[a,s,k]   # weight application
    out[m,s] = IFFT(Out[m,s])               # one per main channel

Weights are per-frequency-bin complex gains; :func:`estimate_weights`
computes the least-squares optimum from the sub-band snapshots (the
adaptive part real CSLCs run at a slower rate), and the tests verify tens
of dB of jammer cancellation on synthetic jammed channels — a functional
check the original paper could not publish but our substitution enables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kernels.fft import FFTPlan
from repro.kernels.opcount import (
    COMPLEX_ADD_FLOPS,
    COMPLEX_MUL_FLOPS,
    OpCounts,
)
from repro.kernels.signal import ChannelSet


@dataclass(frozen=True)
class CSLCWorkload:
    """CSLC problem size (§3.2 defaults).

    The hop between consecutive sub-bands is derived so the ``n_subbands``
    windows of ``subband_len`` samples exactly tile the interval:
    ``hop * (n_subbands - 1) + subband_len == samples``.  For the paper's
    parameters the hop is 112 samples (16-sample overlap).
    """

    n_mains: int = 2
    n_aux: int = 2
    samples: int = 8192
    n_subbands: int = 73
    subband_len: int = 128

    def __post_init__(self) -> None:
        if min(self.n_mains, self.n_aux) < 1:
            raise ConfigError("need at least one main and one aux channel")
        if self.n_subbands < 1:
            raise ConfigError("need at least one sub-band")
        if self.subband_len < 2:
            raise ConfigError("sub-band length must be at least 2")
        if self.n_subbands == 1:
            if self.samples != self.subband_len:
                raise ConfigError(
                    "single sub-band requires samples == subband_len"
                )
            return
        span = self.samples - self.subband_len
        if span < 0 or span % (self.n_subbands - 1):
            raise ConfigError(
                f"{self.n_subbands} sub-bands of {self.subband_len} cannot "
                f"exactly tile {self.samples} samples"
            )

    @property
    def hop(self) -> int:
        """Samples between consecutive sub-band starts."""
        if self.n_subbands == 1:
            return self.samples
        return (self.samples - self.subband_len) // (self.n_subbands - 1)

    @property
    def n_channels(self) -> int:
        return self.n_mains + self.n_aux

    @property
    def transforms(self) -> int:
        """Total FFT + IFFT invocations per interval."""
        return self.n_subbands * (self.n_channels + self.n_mains)

    def op_counts(self, plan: FFTPlan) -> OpCounts:
        """Exact arithmetic census of one interval under ``plan``.

        Forward FFTs for every channel, weight application per main, and
        an IFFT per main channel; memory traffic is mapping-specific and
        not included here.
        """
        if plan.n != self.subband_len:
            raise ConfigError(
                f"plan size {plan.n} != sub-band length {self.subband_len}"
            )
        fft_ops = plan.op_counts().scaled(
            self.n_subbands * (self.n_channels + self.n_mains)
        )
        per_bin = self.n_aux * (COMPLEX_MUL_FLOPS + COMPLEX_ADD_FLOPS)
        weight_flops = self.n_mains * self.n_subbands * self.subband_len * per_bin
        # Complex multiply: 4 muls + 2 adds; complex subtract: 2 adds.
        weight_muls = self.n_mains * self.n_subbands * self.subband_len * self.n_aux * 4
        weight_adds = weight_flops - weight_muls
        return fft_ops + OpCounts(adds=weight_adds, muls=weight_muls)


def extract_subbands(x: np.ndarray, workload: CSLCWorkload) -> np.ndarray:
    """Slice one channel into its (n_subbands, subband_len) windows."""
    x = np.asarray(x)
    if x.shape != (workload.samples,):
        raise ConfigError(
            f"expected ({workload.samples},) samples, got {x.shape}"
        )
    hop = workload.hop
    out = np.empty((workload.n_subbands, workload.subband_len), dtype=x.dtype)
    for s in range(workload.n_subbands):
        start = s * hop
        out[s] = x[start : start + workload.subband_len]
    return out


def overlap_add(subbands: np.ndarray, workload: CSLCWorkload) -> np.ndarray:
    """Reassemble sub-band outputs into one interval.

    Overlapping regions are averaged by their coverage count so that
    reassembling unmodified sub-bands reproduces the input exactly.
    """
    if subbands.shape != (workload.n_subbands, workload.subband_len):
        raise ConfigError(
            f"expected ({workload.n_subbands}, {workload.subband_len}), "
            f"got {subbands.shape}"
        )
    hop = workload.hop
    acc = np.zeros(workload.samples, dtype=np.complex128)
    coverage = np.zeros(workload.samples, dtype=np.float64)
    for s in range(workload.n_subbands):
        start = s * hop
        acc[start : start + workload.subband_len] += subbands[s]
        coverage[start : start + workload.subband_len] += 1.0
    if np.any(coverage == 0):
        raise ConfigError("sub-bands do not cover the interval")
    return acc / coverage


def estimate_weights(
    main_fft: np.ndarray, aux_fft: np.ndarray, loading: float = 1e-4
) -> np.ndarray:
    """Regularised least-squares cancellation weights, per main and bin.

    Parameters
    ----------
    main_fft:
        (n_mains, n_subbands, bins) sub-band spectra of the main channels.
    aux_fft:
        (n_aux, n_subbands, bins) sub-band spectra of the aux channels.
    loading:
        Diagonal loading relative to the band-average auxiliary power.
        In bins the jammer does not occupy, the aux snapshots are noise;
        without loading the solve would fit that noise and *inject* it
        into the output.  The loading drives those bins' weights toward
        zero while leaving jammer-dominated bins (whose power is orders
        of magnitude above the average) essentially unregularised — the
        standard diagonal-loading practice in side-lobe cancellers.
        Pass 0.0 for the exact unregularised least squares.

    Returns
    -------
    (n_mains, n_aux, bins) complex weights minimising
    ``sum_s |M[m,s,k] - sum_a w[m,a,k] A[a,s,k]|^2 + lam |w|^2`` per bin.
    """
    n_mains, n_sub, bins = main_fft.shape
    n_aux = aux_fft.shape[0]
    if aux_fft.shape[1:] != (n_sub, bins):
        raise ConfigError(
            f"aux spectra shape {aux_fft.shape} inconsistent with mains "
            f"{main_fft.shape}"
        )
    if loading < 0:
        raise ConfigError(f"loading must be non-negative, got {loading}")
    lam = loading * float(np.mean(np.abs(aux_fft) ** 2)) * n_sub
    eye = np.eye(n_aux)
    weights = np.zeros((n_mains, n_aux, bins), dtype=np.complex128)
    for k in range(bins):
        # Snapshot matrix over sub-bands: (n_sub, n_aux).
        a = aux_fft[:, :, k].T
        gram = a.conj().T @ a + lam * eye
        for m in range(n_mains):
            b = main_fft[m, :, k]
            if lam > 0:
                weights[m, :, k] = np.linalg.solve(gram, a.conj().T @ b)
            else:
                w, *_ = np.linalg.lstsq(a, b, rcond=None)
                weights[m, :, k] = w
    return weights


@dataclass(frozen=True)
class CSLCResult:
    """Output of a CSLC interval.

    ``outputs``: (n_mains, samples) time-domain cancelled channels.
    ``output_subbands``: (n_mains, n_subbands, subband_len) before
    reassembly — what the hardware kernels actually produce.
    ``weights``: the (n_mains, n_aux, bins) weights applied.
    ``cancellation_db``: per-main jammer-power reduction, main in vs out.
    """

    outputs: np.ndarray
    output_subbands: np.ndarray
    weights: np.ndarray
    cancellation_db: Tuple[float, ...]


def cancellation_db(before: np.ndarray, after: np.ndarray) -> float:
    """Power reduction from ``before`` to ``after`` in dB (positive =
    cancelled)."""
    p_before = float(np.mean(np.abs(before) ** 2))
    p_after = float(np.mean(np.abs(after) ** 2))
    if p_after <= 1e-30:
        return 300.0
    return 10.0 * np.log10(max(p_before, 1e-30) / p_after)


def interference_rejection_db(
    channels: ChannelSet, outputs: np.ndarray
) -> Tuple[float, ...]:
    """Per-main reduction of the non-signal (jammer + noise) residual.

    Uses the synthesis-time clean signal that a real system would not
    have: rejection = power(main - signal) / power(out - signal) in dB.
    Unlike :func:`cancellation_db`, this is not floored by the desired
    signal's own power, so it measures cancellation quality directly.
    """
    if outputs.shape != channels.mains.shape:
        raise ConfigError(
            f"outputs shape {outputs.shape} != mains {channels.mains.shape}"
        )
    rejections = []
    for m in range(channels.n_mains):
        before = channels.mains[m] - channels.signal
        after = outputs[m] - channels.signal
        rejections.append(cancellation_db(before, after))
    return tuple(rejections)


def cslc_oracle(
    channels: ChannelSet,
    workload: CSLCWorkload,
    weights: np.ndarray,
) -> np.ndarray:
    """Independent numpy-FFT implementation of the CSLC pipeline.

    Used as the functional cross-check for the machine mappings (which run
    the from-scratch :class:`~repro.kernels.fft.FFTPlan` transforms): same
    sub-banding, weight application, and overlap-add reassembly, but all
    transforms via ``numpy.fft``.  Returns (n_mains, samples) outputs.
    """
    hop = workload.hop
    n = workload.subband_len
    starts = np.arange(workload.n_subbands) * hop
    idx = starts[:, None] + np.arange(n)[None, :]
    main_fft = np.fft.fft(channels.mains[:, idx], axis=-1)
    aux_fft = np.fft.fft(channels.auxes[:, idx], axis=-1)
    cancelled = main_fft - np.einsum("mak,ask->msk", weights, aux_fft)
    out_sub = np.fft.ifft(cancelled, axis=-1)
    outputs = np.empty((workload.n_mains, workload.samples), dtype=np.complex128)
    for m in range(workload.n_mains):
        outputs[m] = overlap_add(out_sub[m], workload)
    return outputs


def cslc_reference(
    channels: ChannelSet,
    workload: CSLCWorkload,
    plan: Optional[FFTPlan] = None,
    weights: Optional[np.ndarray] = None,
) -> CSLCResult:
    """Run one CSLC interval functionally.

    Uses ``plan`` (default: the paper's radix-4/radix-2 factorization) for
    every transform, estimates weights from the data unless given, and
    returns time-domain outputs plus cancellation metrics.
    """
    if channels.n_mains != workload.n_mains or channels.n_aux != workload.n_aux:
        raise ConfigError(
            f"channel set ({channels.n_mains} mains, {channels.n_aux} aux) "
            f"does not match workload ({workload.n_mains}, {workload.n_aux})"
        )
    if channels.samples != workload.samples:
        raise ConfigError(
            f"channel samples {channels.samples} != workload "
            f"{workload.samples}"
        )
    if plan is None:
        plan = FFTPlan(workload.subband_len)
    if plan.n != workload.subband_len:
        raise ConfigError(
            f"plan size {plan.n} != sub-band length {workload.subband_len}"
        )

    def spectra(channel_data: np.ndarray) -> np.ndarray:
        out = np.empty(
            (channel_data.shape[0], workload.n_subbands, workload.subband_len),
            dtype=np.complex128,
        )
        for c in range(channel_data.shape[0]):
            sub = extract_subbands(channel_data[c], workload)
            out[c] = plan.execute_batch(sub)
        return out

    main_fft = spectra(channels.mains)
    aux_fft = spectra(channels.auxes)

    if weights is None:
        weights = estimate_weights(main_fft, aux_fft)
    elif weights.shape != (
        workload.n_mains,
        workload.n_aux,
        workload.subband_len,
    ):
        raise ConfigError(f"weights shape {weights.shape} is wrong")

    out_subbands = np.empty(
        (workload.n_mains, workload.n_subbands, workload.subband_len),
        dtype=np.complex128,
    )
    outputs = np.empty((workload.n_mains, workload.samples), dtype=np.complex128)
    cancel = []
    for m in range(workload.n_mains):
        cancelled = main_fft[m] - np.einsum(
            "ak,ask->sk", weights[m], aux_fft
        )
        out_subbands[m] = plan.execute_batch(cancelled, inverse=True)
        outputs[m] = overlap_add(out_subbands[m], workload)
        cancel.append(cancellation_db(channels.mains[m], outputs[m]))
    return CSLCResult(
        outputs=outputs,
        output_subbands=out_subbands,
        weights=weights,
        cancellation_db=tuple(cancel),
    )
