"""Synthetic radar-channel data.

The paper ran the CSLC on radar channel data we do not have; per the
substitution policy (DESIGN.md §1) we synthesise channels that exercise the
same code path *and* let the canceller's function be verified: two main
channels carrying a desired signal plus strong jammer leakage, and two
auxiliary channels dominated by the jammer.  Cancellation quality (in dB)
is then a functional check on the whole FFT -> weight -> IFFT pipeline.

All arrays are complex128 internally; callers quantise to complex64
("single-precision floating-point operations", §3.2) where they need to.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ChannelSet:
    """One processing interval of radar data.

    ``mains``: shape (n_mains, samples) — desired signal + jammer leakage.
    ``auxes``: shape (n_aux, samples) — jammer reference channels.
    ``signal``: shape (samples,) — the clean desired signal, kept for
    evaluating cancellation quality (not visible to the canceller).
    ``jammer``: shape (samples,) — the clean jammer waveform.
    """

    mains: np.ndarray
    auxes: np.ndarray
    signal: np.ndarray
    jammer: np.ndarray

    def __post_init__(self) -> None:
        if self.mains.ndim != 2 or self.auxes.ndim != 2:
            raise ConfigError("mains/auxes must be 2-D (channels, samples)")
        if self.mains.shape[1] != self.auxes.shape[1]:
            raise ConfigError("mains and auxes must have equal sample counts")

    @property
    def n_mains(self) -> int:
        return self.mains.shape[0]

    @property
    def n_aux(self) -> int:
        return self.auxes.shape[0]

    @property
    def samples(self) -> int:
        return self.mains.shape[1]


def make_jammed_channels(
    samples: int,
    n_mains: int = 2,
    n_aux: int = 2,
    jammer_to_signal_db: float = 30.0,
    noise_db: float = -40.0,
    seed: int = 0,
) -> ChannelSet:
    """Synthesize a jammed multi-channel interval.

    The desired signal is a short train of linear-FM (chirp) pulses; the
    jammer is a strong narrowband tone with slow phase modulation (a
    classic noise-jammer stand-in).  Each main channel receives the signal
    at unit gain plus the jammer through a distinct complex side-lobe gain;
    each auxiliary channel receives the jammer through a distinct
    near-unit complex gain plus a trace of signal.  Gains are frequency-
    flat, so a per-bin weight solve can cancel the jammer almost exactly —
    giving the tests a sharp functional criterion.
    """
    if samples <= 0:
        raise ConfigError(f"samples must be positive, got {samples}")
    if n_mains <= 0 or n_aux <= 0:
        raise ConfigError("need at least one main and one aux channel")
    rng = np.random.default_rng(seed)
    t = np.arange(samples) / samples

    # Desired signal: three chirp pulses at distinct delays.
    signal = np.zeros(samples, dtype=np.complex128)
    pulse_len = max(8, samples // 16)
    tau = np.arange(pulse_len) / pulse_len
    pulse = np.exp(1j * np.pi * 40.0 * tau * tau)
    for start_frac in (0.1, 0.45, 0.8):
        start = int(start_frac * samples)
        stop = min(start + pulse_len, samples)
        signal[start:stop] += pulse[: stop - start]

    # Jammer: strong tone with slow random phase walk.
    jam_gain = 10.0 ** (jammer_to_signal_db / 20.0)
    phase_walk = np.cumsum(rng.normal(0.0, 0.002, samples))
    jammer = jam_gain * np.exp(1j * (2 * np.pi * 37.25 * samples * t / samples + phase_walk))

    noise_gain = 10.0 ** (noise_db / 20.0)

    def noise() -> np.ndarray:
        return noise_gain * (
            rng.normal(size=samples) + 1j * rng.normal(size=samples)
        ) / np.sqrt(2.0)

    main_leak = 0.05 * (
        rng.normal(size=n_mains) + 1j * rng.normal(size=n_mains)
    )
    aux_gain = 1.0 + 0.1 * (
        rng.normal(size=n_aux) + 1j * rng.normal(size=n_aux)
    )

    mains = np.stack(
        [signal + main_leak[m] * jammer + noise() for m in range(n_mains)]
    )
    auxes = np.stack(
        [aux_gain[a] * jammer + 0.001 * signal + noise() for a in range(n_aux)]
    )
    return ChannelSet(mains=mains, auxes=auxes, signal=signal, jammer=jammer)


def power_db(x: np.ndarray) -> float:
    """Mean power of ``x`` in dB (floor at -300 dB for silence)."""
    p = float(np.mean(np.abs(x) ** 2))
    if p <= 1e-30:
        return -300.0
    return 10.0 * np.log10(p)


def tone_indices(samples: int, freq_bin: float, width: int = 3) -> np.ndarray:
    """FFT bin indices around a (possibly fractional) tone bin."""
    center = int(round(freq_bin)) % samples
    offsets = np.arange(-width, width + 1)
    return (center + offsets) % samples
