"""Functional kernel implementations and workload generators.

These are the *reference* computations: they produce real outputs (checked
against numpy/scipy oracles in the tests) and exact operation censuses that
the machine models schedule.  The three kernels are the paper's (§3):

* :mod:`repro.kernels.corner_turn` — matrix transpose (memory bandwidth).
* :mod:`repro.kernels.cslc` — coherent side-lobe canceller: per-sub-band
  FFT -> weight application -> IFFT over four radar channels.
* :mod:`repro.kernels.beam_steering` — phased-array phase computation from
  calibration tables (adds and shifts only).

Supporting modules: :mod:`repro.kernels.fft` (radix-2 / radix-4 /
mixed-radix FFTs built from scratch with exact op counts),
:mod:`repro.kernels.signal` (synthetic radar data), and
:mod:`repro.kernels.workloads` (canonical paper-size and small test-size
parameter sets).
"""

from repro.kernels.beam_steering import (
    BeamSteeringTables,
    BeamSteeringWorkload,
    beam_steering_reference,
    make_tables,
)
from repro.kernels.corner_turn import (
    CornerTurnWorkload,
    blocked_corner_turn,
    corner_turn_reference,
)
from repro.kernels.cslc import (
    CSLCResult,
    CSLCWorkload,
    cancellation_db,
    cslc_oracle,
    cslc_reference,
    estimate_weights,
    extract_subbands,
    interference_rejection_db,
    overlap_add,
)
from repro.kernels.fft import FFTPlan, default_radices
from repro.kernels.opcount import OpCounts
from repro.kernels.workloads import (
    canonical_beam_steering,
    canonical_corner_turn,
    canonical_cslc,
    small_beam_steering,
    small_corner_turn,
    small_cslc,
)

__all__ = [
    "BeamSteeringTables",
    "BeamSteeringWorkload",
    "CSLCResult",
    "CSLCWorkload",
    "CornerTurnWorkload",
    "FFTPlan",
    "OpCounts",
    "beam_steering_reference",
    "blocked_corner_turn",
    "cancellation_db",
    "canonical_beam_steering",
    "canonical_corner_turn",
    "canonical_cslc",
    "corner_turn_reference",
    "cslc_oracle",
    "cslc_reference",
    "default_radices",
    "estimate_weights",
    "extract_subbands",
    "interference_rejection_db",
    "make_tables",
    "overlap_add",
    "small_beam_steering",
    "small_corner_turn",
    "small_cslc",
]
