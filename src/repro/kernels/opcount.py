"""Exact operation censuses.

The paper's efficiency claims are op-count-relative ("Imagine ... about 10
useful operations per cycle", "Raw achieves about 31.4% of the peak",
"[Raw's] radix-2 FFT [has] about 1.5 [times] the number [of operations] in
the radix-4 FFT"), so the reproduction needs exact, auditable op counts.
:class:`OpCounts` is the common census record; kernel modules produce them
both analytically (from structure) and by instrumentation (counting as they
compute), and the tests require the two to agree.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: Real-operation costs of complex arithmetic on real ALUs.
COMPLEX_ADD_FLOPS = 2  # two real additions
COMPLEX_MUL_FLOPS = 6  # four real multiplies + two real additions
COMPLEX_MUL_ADDS = 2
COMPLEX_MUL_MULS = 4


@dataclass(frozen=True)
class OpCounts:
    """A census of primitive operations.

    ``adds``/``muls``/``divs`` are real floating-point (or integer ALU)
    operations; ``shifts`` are bit shifts; ``loads``/``stores`` count word
    accesses; ``permutes`` count data-rearrangement element-operations
    (vector shuffles, network routes); ``other`` covers address/loop/branch
    bookkeeping when a census includes it.
    """

    adds: float = 0.0
    muls: float = 0.0
    divs: float = 0.0
    shifts: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    permutes: float = 0.0
    other: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value < 0:
                raise ValueError(f"negative op count {f.name}={value}")

    @property
    def flops(self) -> float:
        """Arithmetic operations (adds + multiplies + divides)."""
        return self.adds + self.muls + self.divs

    @property
    def arithmetic(self) -> float:
        """Arithmetic including shifts (beam steering is adds + shifts)."""
        return self.flops + self.shifts

    @property
    def memory_ops(self) -> float:
        return self.loads + self.stores

    @property
    def total(self) -> float:
        """Every counted operation."""
        return (
            self.flops
            + self.shifts
            + self.memory_ops
            + self.permutes
            + self.other
        )

    def __add__(self, other: "OpCounts") -> "OpCounts":
        if not isinstance(other, OpCounts):
            return NotImplemented
        return OpCounts(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "OpCounts":
        """Every field multiplied by ``factor`` (e.g. per-transform counts
        scaled to a sub-band count)."""
        if factor < 0:
            raise ValueError(f"negative scale factor {factor}")
        return OpCounts(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def format(self) -> str:
        parts = [
            f"{name}={value:,.0f}"
            for name, value in self.as_dict().items()
            if value
        ]
        return f"OpCounts({', '.join(parts) or 'empty'})"
