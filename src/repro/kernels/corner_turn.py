"""Corner turn: matrix transpose (§3.1).

"The corner turn is a matrix transpose operation that tests memory
bandwidth.  The data in the source matrix is transposed and stored in the
destination matrix."  The canonical workload is a 1024 x 1024 matrix of
4-byte elements — chosen larger than Imagine's SRF and Raw's local
memories but smaller than VIRAM's on-chip DRAM.

This module provides the functional reference (a plain transpose), the
blocked variant every mapping performs (so outputs are produced by the same
traversal the cycles are charged for), and the workload parameter record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kernels.opcount import OpCounts
from repro.units import WORD_BYTES


@dataclass(frozen=True)
class CornerTurnWorkload:
    """Corner-turn problem size.

    ``rows`` x ``cols`` matrix of 4-byte (32-bit) elements.
    """

    rows: int = 1024
    cols: int = 1024

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigError(f"matrix shape must be positive, got {self}")

    @property
    def words(self) -> int:
        """Matrix size in 32-bit words."""
        return self.rows * self.cols

    @property
    def nbytes(self) -> int:
        return self.words * WORD_BYTES

    def make_matrix(self, seed: int = 0) -> np.ndarray:
        """A deterministic float32 source matrix."""
        rng = np.random.default_rng(seed)
        return rng.standard_normal((self.rows, self.cols)).astype(np.float32)

    def op_counts(self) -> OpCounts:
        """The corner turn moves data: one load and one store per element."""
        return OpCounts(loads=float(self.words), stores=float(self.words))


def corner_turn_reference(matrix: np.ndarray) -> np.ndarray:
    """The functional answer: a contiguous transposed copy."""
    if matrix.ndim != 2:
        raise ConfigError(f"expected a 2-D matrix, got shape {matrix.shape}")
    return np.ascontiguousarray(matrix.T)


def blocked_corner_turn(matrix: np.ndarray, block: int) -> np.ndarray:
    """Transpose via square blocks, as every mapping in the paper does
    (VIRAM: 16x16 vector-register blocks; Raw: 64x64 tile-memory blocks).

    The matrix dimensions must be divisible by ``block`` — true for all
    canonical and test workloads; the mappings check this before charging
    cycles.
    """
    if matrix.ndim != 2:
        raise ConfigError(f"expected a 2-D matrix, got shape {matrix.shape}")
    rows, cols = matrix.shape
    if block <= 0:
        raise ConfigError(f"block size must be positive, got {block}")
    if rows % block or cols % block:
        raise ConfigError(
            f"matrix shape {rows}x{cols} not divisible by block {block}"
        )
    out = np.empty((cols, rows), dtype=matrix.dtype)
    for bi in range(0, rows, block):
        for bj in range(0, cols, block):
            tile = matrix[bi : bi + block, bj : bj + block]
            out[bj : bj + block, bi : bi + block] = tile.T
    return out
