"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run KERNEL MACHINE``
    Run one mapping and print its summary and cycle breakdown.
``table N`` / ``figure N``
    Regenerate one table (1-4) or figure (8-9) with model-vs-paper
    columns.
``report``
    Run every registered experiment (the EXPERIMENTS.md content).
    ``--jobs N`` spreads the kernel runs over N worker processes;
    ``--perf`` prints timer and run-cache statistics to stderr.
``check``
    Validate the model against its machine-checkable invariants and
    differential oracles.  ``--fast`` (default) checks every registered
    (kernel, machine) pair; ``--full`` adds the cache and executor
    oracles; ``--inject`` corrupts each redundant path on purpose and
    proves the matching oracle notices (always exits non-zero: 1 when
    every injected corruption was detected, 3 when an oracle missed
    its fault).
``experiments``
    List the experiment registry.
``list``
    List kernels, machines, and mapping options.

Examples
--------
::

    python -m repro run corner_turn viram
    python -m repro run cslc raw --option balanced=false
    python -m repro table 3
    python -m repro figure 8
    python -m repro report
    python -m repro report --jobs 4 --perf
    python -m repro check --fast
    python -m repro check --full --jobs 4
    python -m repro check --inject
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def _parse_option(text: str):
    """Parse ``key=value`` mapping options with simple literal coercion."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"option {text!r} must look like key=value"
        )
    key, value = text.split("=", 1)
    lowered = value.lower()
    if lowered in ("true", "false"):
        return key, lowered == "true"
    try:
        return key, int(value)
    except ValueError:
        pass
    try:
        return key, float(value)
    except ValueError:
        pass
    return key, value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Performance Analysis of PIM, Stream "
            "Processing, and Tiled Processing on Memory-Intensive Signal "
            "Processing Kernels' (ISCA 2003)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one kernel on one machine")
    run_p.add_argument("kernel")
    run_p.add_argument("machine")
    run_p.add_argument(
        "--option",
        "-o",
        action="append",
        default=[],
        type=_parse_option,
        help="mapping option, e.g. -o balanced=false -o tables_in_srf=true",
    )
    run_p.add_argument("--seed", type=int, default=0)

    table_p = sub.add_parser("table", help="regenerate a paper table")
    table_p.add_argument("number", type=int, choices=(1, 2, 3, 4))

    figure_p = sub.add_parser("figure", help="regenerate a paper figure")
    figure_p.add_argument("number", type=int, choices=(8, 9))

    report_p = sub.add_parser(
        "report", help="run every experiment (EXPERIMENTS.md)"
    )
    report_p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help=(
            "evaluate the suite's kernel runs on N worker processes "
            "(output is identical to serial; default serial)"
        ),
    )
    report_p.add_argument(
        "--perf",
        action="store_true",
        help="print timer and run-cache statistics to stderr afterwards",
    )
    check_p = sub.add_parser(
        "check",
        help="validate invariants and differential oracles",
        description=(
            "Machine-check the model: §2.5 lower bounds, traffic "
            "footprints, cycle accounting, and the redundant-path "
            "differential oracles (cache, executor, DRAM batch)."
        ),
    )
    tier_group = check_p.add_mutually_exclusive_group()
    tier_group.add_argument(
        "--fast",
        dest="tier",
        action="store_const",
        const="fast",
        help="invariants on every pair + synthetic oracles (default)",
    )
    tier_group.add_argument(
        "--full",
        dest="tier",
        action="store_const",
        const="full",
        help="fast tier plus the cache and serial-vs-parallel oracles",
    )
    tier_group.add_argument(
        "--inject",
        dest="tier",
        action="store_const",
        const="inject",
        help=(
            "fault injection: corrupt each redundant path and prove its "
            "oracle detects it (exits 1 = all detected, 3 = oracle blind)"
        ),
    )
    check_p.set_defaults(tier="fast")
    check_p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the executor oracle (default 2)",
    )
    check_p.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="print every passing check, not just failures and skips",
    )
    sub.add_parser("experiments", help="list the experiment registry")
    sub.add_parser("list", help="list kernels and machines")
    return parser


def _cmd_run(args) -> int:
    from repro.mappings.registry import run

    options = dict(args.option)
    result = run(args.kernel, args.machine, seed=args.seed, **options)
    print(result.summary())
    return 0


def _cmd_table(args) -> int:
    from repro.eval.experiments import run_experiment

    outcome = run_experiment(f"table{args.number}")
    print(outcome.rendered)
    return 0


def _cmd_figure(args) -> int:
    from repro.eval.experiments import run_experiment

    outcome = run_experiment(f"figure{args.number}")
    print(outcome.rendered)
    return 0


def _cmd_report(args) -> int:
    from repro.eval.report import full_report

    # Perf output goes to stderr so the report on stdout stays
    # byte-identical whether or not instrumentation is requested.
    print(full_report(jobs=args.jobs))
    if args.perf:
        from repro.perf import RUN_CACHE, timers

        print(timers.render(), file=sys.stderr)
        print(RUN_CACHE.format_stats(), file=sys.stderr)
    return 0


def _cmd_check(args) -> int:
    if args.tier == "inject":
        from repro.check.faults import render_injection, run_injection

        outcomes = run_injection()
        print(render_injection(outcomes))
        if all(o.detected for o in outcomes):
            print(
                "corruption was injected and detected on every oracle; "
                "exiting non-zero to demonstrate failure propagation"
            )
            return 1
        print("error: at least one oracle missed its injected fault",
              file=sys.stderr)
        return 3
    from repro.check import run_checks

    report = run_checks(args.tier, jobs=args.jobs)
    print(report.render(verbose=args.verbose))
    return report.exit_code


def _cmd_experiments(_args) -> int:
    from repro.eval.experiments import EXPERIMENTS

    for experiment_id in EXPERIMENTS:
        print(experiment_id)
    return 0


def _cmd_list(_args) -> int:
    from repro.mappings.registry import KERNELS, MACHINES

    print("kernels: " + ", ".join(KERNELS))
    print("machines:", ", ".join(MACHINES))
    print(
        "options:  cslc/raw: balanced=, streamed_fft=; "
        "corner_turn/imagine: via_network_port=; "
        "beam_steering/imagine: tables_in_srf=; "
        "cslc/imagine: independent_ffts="
    )
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "report": _cmd_report,
    "check": _cmd_check,
    "experiments": _cmd_experiments,
    "list": _cmd_list,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
