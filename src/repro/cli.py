"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run KERNEL MACHINE``
    Run one mapping and print its summary and cycle breakdown.
    ``--json`` prints a machine-readable record (cycles, breakdown,
    config hash) instead; ``--trace PATH`` additionally writes a Chrome
    ``trace_event`` JSON of the run.
``trace KERNEL MACHINE``
    Run one mapping with tracing on and emit the event stream:
    ``--format chrome`` (default, Perfetto-loadable JSON), ``svg``
    (per-resource utilization timeline), or ``jsonl`` (one metrics-
    manifest record).  ``-o PATH`` writes to a file instead of stdout.
``table N`` / ``figure N``
    Regenerate one table (1-4) or figure (8-9) with model-vs-paper
    columns.
``report``
    Run every registered experiment (the EXPERIMENTS.md content).
    ``--jobs N`` spreads the kernel runs over N worker processes;
    ``--perf`` prints timer, run-cache, and tensor-engine statistics to
    stderr; ``--metrics PATH`` writes the JSON-lines metrics manifest;
    ``--density N`` appends a calibration-sensitivity section with N
    grid points per constant side.
``sensitivity``
    Calibration sensitivity sweep (elasticity per constant).
    ``--delta D`` sets the maximum perturbation, ``--points N`` (alias
    ``--density``) densifies the grid — dense grids collapse into
    tensor batches (docs/performance.md), so N=100 stays cheap.
``check``
    Validate the model against its machine-checkable invariants and
    differential oracles.  ``--fast`` (default) checks every registered
    (kernel, machine) pair; ``--full`` adds the cache and executor
    oracles; ``--inject`` corrupts each redundant path on purpose and
    proves the matching oracle notices (always exits non-zero: 1 when
    every injected corruption was detected, 3 when an oracle missed
    its fault); ``--chaos [SPEC]`` runs the report clean and then under
    injected runtime faults (worker kills, disk errors — see
    docs/robustness.md) and requires byte-identical output with the
    recoveries visible in ``resilience.*`` telemetry.
``doctor``
    Probe the execution runtime's health — pool spawn, disk-cache
    round-trip and digest sweep, interprocess lock, telemetry registry,
    service journal — and print a pass/warn/fail table.  Exits 0 when
    healthy (warnings allowed), 2 naming the failing probe otherwise.
    ``--json`` prints a machine-readable record instead (what the
    service ``/healthz?full=1`` endpoint serves).
``serve``
    Run the simulation HTTP service (docs/service.md): JSON
    run/sweep/report/pipeline jobs, deduplicated by content digest,
    journalled to a write-ahead log under ``.repro/service/``, admitted
    through a bounded queue with load shedding, drained gracefully on
    SIGTERM.  ``--port 0 --ready-file PATH`` supports raceless scripted
    startup.
``cache ACTION``
    Manage the persistent disk tier of the run cache (see
    docs/performance.md).  ``stats`` prints counters and footprint
    (``--json`` adds the packed-index internals — manifest size,
    segment count, probe-latency percentiles), ``clear`` removes every
    persisted entry, ``prune`` evicts oldest entries beyond
    ``--max-entries`` / ``--max-bytes``, ``migrate`` packs a legacy
    file-per-key store into the packed index with digests re-verified.
    ``stats`` (and ``metrics regress``) never import numpy or the
    modelling stack — the warm fast-start path.
``metrics ACTION``
    The metrics history and its regression gate (docs/observability.md).
    ``history`` lists the records in ``.repro/obs/history.jsonl``
    (``--heal`` quarantines corrupt lines); ``regress`` compares the
    latest record against prior history and the committed
    ``BENCH_*.json`` baselines with per-metric tolerance bands, exiting
    non-zero on regression.
``analyze ACTION``
    Derived analyses.  ``roofline`` prints per kernel×machine
    arithmetic intensity and memory-bound fraction (``--json`` for
    records, ``--html PATH`` writes the self-contained observability
    dashboard, ``--traced`` adds the trace-track cross-check).
``experiments``
    List the experiment registry.
``list``
    List kernels, machines, and mapping options.

``run``, ``report``, and ``sensitivity`` accept ``--no-disk-cache`` to
skip the disk tier for one invocation; setting ``REPRO_DISK_CACHE=0``
disables it globally.

Model-running commands open a *flight-recorder session* (an append-only
event ledger under ``.repro/obs/ledger/``) and append one record to the
metrics history on success; ``REPRO_OBS=0`` disables the whole layer.
``report``, ``sensitivity``, and ``pipeline`` accept ``--progress
{auto,tty,jsonl,off}`` for live sweep progress on stderr (default
``auto``: a status line when stderr is a terminal, silence otherwise —
stdout is never touched).

Examples
--------
::

    python -m repro run corner_turn viram
    python -m repro run cslc raw --option balanced=false
    python -m repro run corner_turn viram --json
    python -m repro trace corner_turn viram --format chrome -o trace.json
    python -m repro trace corner_turn viram --format svg -o timeline.svg
    python -m repro table 3
    python -m repro figure 8
    python -m repro report
    python -m repro report --jobs 4 --perf
    python -m repro report --no-disk-cache
    python -m repro report --density 10
    python -m repro sensitivity --points 50 --perf
    python -m repro check --fast
    python -m repro check --full --jobs 4
    python -m repro check --inject
    python -m repro check --chaos --fast
    python -m repro check --chaos kill=1,corrupt=1
    python -m repro doctor
    python -m repro doctor --json
    python -m repro serve --port 8642
    python -m repro cache stats
    python -m repro cache prune --max-entries 1024
    python -m repro report --progress jsonl
    python -m repro metrics history
    python -m repro metrics regress
    python -m repro analyze roofline
    python -m repro analyze roofline --html dashboard.html
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def _parse_option(text: str):
    """Parse ``key=value`` mapping options with simple literal coercion."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"option {text!r} must look like key=value"
        )
    key, value = text.split("=", 1)
    lowered = value.lower()
    if lowered in ("true", "false"):
        return key, lowered == "true"
    try:
        return key, int(value)
    except ValueError:
        pass
    try:
        return key, float(value)
    except ValueError:
        pass
    return key, value


def _add_progress(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress",
        choices=("auto", "tty", "jsonl", "off"),
        default=None,
        metavar="MODE",
        help=(
            "live sweep progress on stderr: tty (status line), jsonl "
            "(machine-readable lines), off, or auto (tty iff stderr is "
            "a terminal; default: $REPRO_PROGRESS or auto)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Performance Analysis of PIM, Stream "
            "Processing, and Tiled Processing on Memory-Intensive Signal "
            "Processing Kernels' (ISCA 2003)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one kernel on one machine")
    run_p.add_argument("kernel")
    run_p.add_argument("machine")
    run_p.add_argument(
        "--option",
        "-o",
        action="append",
        default=[],
        type=_parse_option,
        help="mapping option, e.g. -o balanced=false -o tables_in_srf=true",
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable run record instead of the summary",
    )
    run_p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="run under tracing and write a Chrome trace_event JSON here",
    )
    run_p.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="skip the persistent disk tier for this invocation",
    )

    trace_p = sub.add_parser(
        "trace",
        help="run one mapping with tracing on and export the events",
        description=(
            "Run KERNEL on MACHINE under the simulation tracer and emit "
            "the structured event stream: spans and instants on named "
            "per-resource tracks, timestamped in simulated cycles."
        ),
    )
    trace_p.add_argument("kernel")
    trace_p.add_argument("machine")
    trace_p.add_argument(
        "--format",
        choices=("chrome", "svg", "jsonl"),
        default="chrome",
        help=(
            "chrome: trace_event JSON (load at ui.perfetto.dev); "
            "svg: utilization timeline; jsonl: metrics-manifest record"
        ),
    )
    trace_p.add_argument(
        "--output",
        "-o",
        metavar="PATH",
        default=None,
        help="write here instead of stdout",
    )
    trace_p.add_argument(
        "--option",
        action="append",
        default=[],
        type=_parse_option,
        help="mapping option, e.g. --option balanced=false",
    )
    trace_p.add_argument("--seed", type=int, default=0)

    table_p = sub.add_parser("table", help="regenerate a paper table")
    table_p.add_argument("number", type=int, choices=(1, 2, 3, 4))

    figure_p = sub.add_parser("figure", help="regenerate a paper figure")
    figure_p.add_argument("number", type=int, choices=(8, 9))

    report_p = sub.add_parser(
        "report", help="run every experiment (EXPERIMENTS.md)"
    )
    report_p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help=(
            "evaluate the suite's kernel runs on N worker processes "
            "(output is identical to serial; default serial)"
        ),
    )
    report_p.add_argument(
        "--perf",
        action="store_true",
        help="print timer and run-cache statistics to stderr afterwards",
    )
    report_p.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the JSON-lines metrics manifest of the sweep here",
    )
    report_p.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="skip the persistent disk tier for this invocation",
    )
    report_p.add_argument(
        "--density",
        type=int,
        default=None,
        metavar="N",
        help=(
            "append a calibration-sensitivity section with N grid "
            "points per constant side (dense grids evaluate as tensor "
            "batches; default: no sensitivity section)"
        ),
    )
    _add_progress(report_p)

    sens_p = sub.add_parser(
        "sensitivity",
        help="calibration sensitivity sweep (elasticity per constant)",
        description=(
            "Perturb every calibrated constant around its DESIGN.md "
            "anchor and report elasticities.  --points/--density "
            "densifies the perturbation grid; the dense cells differ "
            "only in calibration constants, so the planner evaluates "
            "each column as one tensor batch."
        ),
    )
    sens_p.add_argument(
        "--delta",
        type=float,
        default=0.25,
        metavar="D",
        help="maximum relative perturbation (default 0.25)",
    )
    sens_p.add_argument(
        "--points",
        "--density",
        dest="points",
        type=int,
        default=1,
        metavar="N",
        help=(
            "grid points per constant side: magnitudes delta*k/N for "
            "k=1..N (default 1, the classic ±delta sweep)"
        ),
    )
    sens_p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="evaluate on N worker processes (default serial)",
    )
    sens_p.add_argument(
        "--perf",
        action="store_true",
        help="print timer and tensor-engine statistics to stderr afterwards",
    )
    sens_p.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="skip the persistent disk tier for this invocation",
    )
    _add_progress(sens_p)

    check_p = sub.add_parser(
        "check",
        help="validate invariants and differential oracles",
        description=(
            "Machine-check the model: §2.5 lower bounds, traffic "
            "footprints, cycle accounting, and the redundant-path "
            "differential oracles (cache, executor, DRAM batch)."
        ),
    )
    tier_group = check_p.add_mutually_exclusive_group()
    tier_group.add_argument(
        "--fast",
        dest="tier",
        action="store_const",
        const="fast",
        help="invariants on every pair + synthetic oracles (default)",
    )
    tier_group.add_argument(
        "--full",
        dest="tier",
        action="store_const",
        const="full",
        help="fast tier plus the cache and serial-vs-parallel oracles",
    )
    tier_group.add_argument(
        "--inject",
        dest="tier",
        action="store_const",
        const="inject",
        help=(
            "fault injection: corrupt each redundant path and prove its "
            "oracle detects it (exits 1 = all detected, 3 = oracle blind)"
        ),
    )
    check_p.set_defaults(tier="fast")
    check_p.add_argument(
        "--chaos",
        nargs="?",
        const="",
        default=None,
        metavar="SPEC",
        help=(
            "run the report clean and under injected runtime faults "
            "(default spec: kill=1,disk=1) and require byte-identical "
            "output; combine with --fast for the small workloads"
        ),
    )
    check_p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the executor oracle (default 2)",
    )
    check_p.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="print every passing check, not just failures and skips",
    )
    cache_p = sub.add_parser(
        "cache",
        help="inspect or manage the persistent run-cache disk tier",
        description=(
            "The disk tier persists simulated runs across processes "
            "(docs/performance.md).  stats prints counters and footprint "
            "(--json adds the packed-index internals: size, segment "
            "count, probe latency percentiles); clear removes every "
            "persisted entry; prune evicts oldest entries beyond the "
            "caps; migrate packs a legacy file-per-key store into the "
            "index, digest-verifying every entry."
        ),
    )
    cache_p.add_argument(
        "action", choices=("stats", "clear", "prune", "migrate")
    )
    cache_p.add_argument(
        "--json",
        action="store_true",
        help="stats: print a JSON record (counters + index internals)",
    )
    cache_p.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="prune: keep at most N entries (default: cache's own cap)",
    )
    cache_p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="B",
        help="prune: keep at most B bytes (default: cache's own cap)",
    )
    pipe_p = sub.add_parser(
        "pipeline",
        help="compose kernels into radar-chain scenarios (run | fuzz)",
        description=(
            "Multi-stage radar pipelines (corner turn -> CSLC -> beam "
            "steering) with per-machine inter-stage handoff costs "
            "(docs/scenarios.md).  'run' executes the canonical chain; "
            "'fuzz' sweeps a seeded deterministic scenario population "
            "through the pipeline invariants."
        ),
    )
    pipe_sub = pipe_p.add_subparsers(dest="action", required=True)
    prun_p = pipe_sub.add_parser(
        "run", help="run the three-stage chain and print the report"
    )
    prun_p.add_argument(
        "--machine",
        default="all",
        help="machine to run on, or 'all' (default) for every machine",
    )
    prun_p.add_argument(
        "--small",
        action="store_true",
        help="use the test-size workloads instead of the paper sizes",
    )
    prun_p.add_argument("--seed", type=int, default=0)
    prun_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the stage sweep (default serial)",
    )
    prun_p.add_argument(
        "--json",
        action="store_true",
        help="print machine-readable pipeline records instead of reports",
    )
    prun_p.add_argument("--perf", action="store_true")
    prun_p.add_argument("--no-disk-cache", action="store_true")
    _add_progress(prun_p)
    fuzz_p = pipe_sub.add_parser(
        "fuzz",
        help="generate, execute, and invariant-check a scenario sweep",
    )
    fuzz_p.add_argument("--seed", type=int, default=0)
    fuzz_p.add_argument("--count", type=int, default=100, metavar="N")
    fuzz_p.add_argument(
        "--machines",
        default=None,
        metavar="M1,M2",
        help="comma-separated machine subset (default: all machines)",
    )
    fuzz_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the scenario sweep (default serial)",
    )
    fuzz_p.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write the deterministic scenario manifest (JSON) here",
    )
    fuzz_p.add_argument(
        "--json",
        action="store_true",
        help="print the manifest to stdout instead of the summary line",
    )
    fuzz_p.add_argument("--perf", action="store_true")
    fuzz_p.add_argument("--no-disk-cache", action="store_true")
    _add_progress(fuzz_p)

    metrics_p = sub.add_parser(
        "metrics",
        help="metrics history and the perf-regression gate",
        description=(
            "Model-running commands append one record per invocation to "
            ".repro/obs/history.jsonl (docs/observability.md).  "
            "'history' lists those records; 'regress' holds the newest "
            "one against prior history and the committed BENCH_*.json "
            "baselines with per-metric tolerance bands, exiting "
            "non-zero on regression."
        ),
    )
    metrics_sub = metrics_p.add_subparsers(dest="action", required=True)
    regress_p = metrics_sub.add_parser(
        "regress",
        help="compare the latest history record against the baselines",
    )
    regress_p.add_argument(
        "--command",
        dest="only_command",
        default=None,
        metavar="CMD",
        help="compare only records of this command (default: any)",
    )
    regress_p.add_argument(
        "--json",
        action="store_true",
        help="print the comparison records as JSON instead of the table",
    )
    mhist_p = metrics_sub.add_parser(
        "history", help="list the recorded metrics-history entries"
    )
    mhist_p.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="show the newest N records (default 10; 0 = all)",
    )
    mhist_p.add_argument(
        "--json",
        action="store_true",
        help="print the raw records as JSON lines",
    )
    mhist_p.add_argument(
        "--heal",
        action="store_true",
        help="quarantine corrupt history lines before listing",
    )

    analyze_p = sub.add_parser(
        "analyze",
        help="derived analyses (roofline attribution)",
        description=(
            "Derived analyses over the model.  'roofline' computes "
            "per kernel x machine arithmetic intensity, the Table 1/2 "
            "roofs, and the memory-bound cycle fraction of each run's "
            "ledger (docs/observability.md)."
        ),
    )
    analyze_sub = analyze_p.add_subparsers(dest="action", required=True)
    roof_p = analyze_sub.add_parser(
        "roofline",
        help="arithmetic intensity + memory-bound fraction per pair",
    )
    roof_p.add_argument(
        "--json",
        action="store_true",
        help="print JSON records instead of the text table",
    )
    roof_p.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help=(
            "also write the self-contained observability dashboard "
            "(roofline chart, metric-history sparklines, cache hit "
            "rates, utilization timeline) here"
        ),
    )
    roof_p.add_argument(
        "--traced",
        action="store_true",
        help=(
            "re-run each pair under the tracer and add the event-level "
            "memory-busy cross-check column (slower)"
        ),
    )
    roof_p.add_argument(
        "--small",
        action="store_true",
        help="use the test-size workloads instead of the paper sizes",
    )

    doctor_p = sub.add_parser(
        "doctor",
        help="probe the execution runtime's health",
        description=(
            "Run the health-probe battery (process-pool spawn, disk-cache "
            "write/read/verify, interprocess lock, quarantine census, "
            "telemetry registry, observability ledger/history, service "
            "journal) and print a pass/warn/fail table.  "
            "Exits 0 when healthy, 2 naming the failing probe otherwise."
        ),
    )
    doctor_p.add_argument(
        "--json",
        action="store_true",
        help=(
            "print a machine-readable record (one object per probe plus "
            "the verdict) instead of the text table"
        ),
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the simulation HTTP service",
        description=(
            "Serve run/sweep/report/pipeline jobs over a stdlib HTTP API "
            "with a durable write-ahead job journal, content-addressed "
            "deduplication, bounded-queue admission control, and graceful "
            "SIGTERM drain (see docs/service.md)."
        ),
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    serve_p.add_argument(
        "--port", type=int, default=8642,
        help="bind port (0 = ephemeral; see --ready-file)",
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=8, metavar="N",
        help=(
            "admission bound: queued jobs beyond N are rejected with 429; "
            "heavy kinds are shed from N//2 (default 8)"
        ),
    )
    serve_p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="executor threads (default 1; jobs are CPU-bound)",
    )
    serve_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width each sweep-shaped job may use",
    )
    serve_p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "default per-job deadline, inherited by the supervised "
            "executor's chunk deadline (requests may override per job)"
        ),
    )
    serve_p.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help=(
            "write a JSON handshake (pid, host, port, url) here once the "
            "socket is listening — lets scripts use --port 0 racelessly"
        ),
    )
    sub.add_parser("experiments", help="list the experiment registry")
    sub.add_parser("list", help="list kernels and machines")
    return parser


def _cmd_run(args) -> int:
    from repro.mappings.registry import run

    if args.no_disk_cache:
        from repro.perf.diskcache import DISK_CACHE

        DISK_CACHE.disable()
    options = dict(args.option)
    kwargs = dict(options, seed=args.seed)
    if args.trace:
        from repro.trace import trace_run, write_chrome

        result, tracer = trace_run(args.kernel, args.machine, **kwargs)
        write_chrome(args.trace, tracer)
        print(
            f"trace: {tracer.n_events} events -> {args.trace}",
            file=sys.stderr,
        )
    else:
        result = run(args.kernel, args.machine, **kwargs)
    if args.json:
        import json

        from repro.eval.export import kernel_run_record
        from repro.perf.cache import cache_key

        record = {
            "config_hash": cache_key(args.kernel, args.machine, kwargs),
            **kernel_run_record(result),
        }
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(result.summary())
    return 0


def _cmd_trace(args) -> int:
    import json
    from pathlib import Path

    from repro.trace import timeline_svg, to_chrome, trace_run
    from repro.trace.export import manifest_record

    options = dict(args.option)
    kwargs = dict(options, seed=args.seed)
    result, tracer = trace_run(args.kernel, args.machine, **kwargs)
    if args.format == "chrome":
        text = json.dumps(to_chrome(tracer), indent=1) + "\n"
    elif args.format == "svg":
        text = timeline_svg(tracer) + "\n"
    else:
        from repro.perf.cache import cache_key

        record = manifest_record(
            result,
            config_hash=cache_key(args.kernel, args.machine, kwargs),
            counters=tracer.counters,
        )
        text = json.dumps(record, sort_keys=True) + "\n"
    if args.output:
        Path(args.output).write_text(text)
        print(
            f"trace: {tracer.n_events} events "
            f"({args.format}) -> {args.output}",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(text)
    return 0


def _cmd_table(args) -> int:
    from repro.eval.experiments import run_experiment

    outcome = run_experiment(f"table{args.number}")
    print(outcome.rendered)
    return 0


def _cmd_figure(args) -> int:
    from repro.eval.experiments import run_experiment

    outcome = run_experiment(f"figure{args.number}")
    print(outcome.rendered)
    return 0


def _cmd_report(args) -> int:
    from repro.eval.report import full_report
    from repro.obs.progress import progress_reporting

    if args.no_disk_cache:
        from repro.perf.diskcache import DISK_CACHE

        DISK_CACHE.disable()
    # Perf and progress output go to stderr so the report on stdout
    # stays byte-identical whether or not instrumentation is requested.
    with progress_reporting(args.progress):
        text = full_report(
            jobs=args.jobs,
            metrics_path=args.metrics,
            sensitivity_points=args.density,
        )
    print(text)
    if args.perf:
        _print_perf_stats()
    return 0


def _print_perf_stats() -> None:
    from repro.perf import DISK_CACHE, RUN_CACHE, timers
    from repro.perf.tensorsweep import TENSOR_STATS
    from repro.resilience.stats import RESILIENCE
    from repro.scenarios.stats import SCENARIO_STATS

    print(timers.render(), file=sys.stderr)
    print(RUN_CACHE.format_stats(), file=sys.stderr)
    print(DISK_CACHE.format_stats(), file=sys.stderr)
    print(TENSOR_STATS.format_stats(), file=sys.stderr)
    print(SCENARIO_STATS.format_stats(), file=sys.stderr)
    print(RESILIENCE.render(), file=sys.stderr)


def _cmd_sensitivity(args) -> int:
    from repro.eval import sensitivity
    from repro.obs.progress import progress_reporting

    if args.no_disk_cache:
        from repro.perf.diskcache import DISK_CACHE

        DISK_CACHE.disable()
    with progress_reporting(args.progress):
        rows = sensitivity.sweep(
            delta=args.delta, jobs=args.jobs, points=args.points
        )
    print(sensitivity.render(rows))
    if args.perf:
        _print_perf_stats()
    return 0


def _cmd_check(args) -> int:
    if args.chaos is not None:
        from repro.resilience import chaos

        report = chaos.run_chaos_check(
            spec_text=args.chaos or None,
            jobs=args.jobs,
            fast=(args.tier != "full"),
        )
        print(report.render(verbose=args.verbose))
        return report.exit_code
    if args.tier == "inject":
        from repro.check.faults import render_injection, run_injection

        outcomes = run_injection()
        print(render_injection(outcomes))
        if all(o.detected for o in outcomes):
            print(
                "corruption was injected and detected on every oracle; "
                "exiting non-zero to demonstrate failure propagation"
            )
            return 1
        print("error: at least one oracle missed its injected fault",
              file=sys.stderr)
        return 3
    from repro.check import run_checks

    report = run_checks(args.tier, jobs=args.jobs)
    print(report.render(verbose=args.verbose))
    return report.exit_code


def _cmd_cache(args) -> int:
    from repro.perf.diskcache import DISK_CACHE

    if args.action == "stats":
        if args.json:
            import json

            record = {
                f"diskcache.{k}": v for k, v in DISK_CACHE.stats().items()
            }
            record.update(
                {f"index.{k}": v for k, v in DISK_CACHE.index_stats().items()}
            )
            record["root"] = str(DISK_CACHE.root())
            record["enabled"] = DISK_CACHE.enabled
            print(json.dumps(record, indent=2, sort_keys=True))
        else:
            print(DISK_CACHE.format_stats())
    elif args.action == "clear":
        removed = DISK_CACHE.clear()
        print(f"disk cache: cleared {removed} entries at {DISK_CACHE.root()}")
    elif args.action == "migrate":
        outcome = DISK_CACHE.migrate_legacy()
        print(
            f"disk cache: migrated {outcome['migrated']} legacy entries "
            f"({outcome['corrupt']} corrupt quarantined, "
            f"{outcome['stamps']} stamp(s)) into the packed index at "
            f"{DISK_CACHE.root()}"
        )
    else:  # prune
        removed = DISK_CACHE.prune(
            max_entries=args.max_entries, max_bytes=args.max_bytes
        )
        print(f"disk cache: pruned {removed} entries")
        print(DISK_CACHE.format_stats())
    return 0


def _cmd_pipeline(args) -> int:
    from repro.obs.progress import progress_reporting

    if args.no_disk_cache:
        from repro.perf.diskcache import DISK_CACHE

        DISK_CACHE.disable()
    with progress_reporting(args.progress):
        if args.action == "run":
            return _pipeline_run(args)
        return _pipeline_fuzz(args)


def _pipeline_run(args) -> int:
    import json

    from repro.mappings.registry import MACHINES
    from repro.scenarios import (
        canonical_scenario,
        pipeline_record,
        render_pipeline,
        run_scenarios,
        small_scenario,
    )

    if args.machine == "all":
        machines = list(MACHINES)
    elif args.machine in MACHINES:
        machines = [args.machine]
    else:
        raise ReproError(
            f"unknown machine {args.machine!r}; "
            f"expected one of {MACHINES} or 'all'"
        )
    build = small_scenario if args.small else canonical_scenario
    scenarios = [build(machine) for machine in machines]
    if args.seed:
        import dataclasses

        scenarios = [
            dataclasses.replace(s, seed=args.seed) for s in scenarios
        ]
    pruns = run_scenarios(scenarios, jobs=args.jobs)
    if args.json:
        records = [pipeline_record(prun) for prun in pruns]
        print(json.dumps(records, indent=2, sort_keys=True))
    else:
        print("\n\n".join(render_pipeline(prun) for prun in pruns))
    if args.perf:
        _print_perf_stats()
    return 0


def _pipeline_fuzz(args) -> int:
    from repro.scenarios import (
        fuzz_manifest,
        generate_scenarios,
        manifest_json,
        run_scenarios,
        validate_pipelines,
    )

    machines = (
        tuple(m.strip() for m in args.machines.split(",") if m.strip())
        if args.machines
        else None
    )
    scenarios = generate_scenarios(args.seed, args.count, machines)
    pruns = run_scenarios(scenarios, jobs=args.jobs)
    violations = validate_pipelines(pruns)
    from repro.mappings.registry import MACHINES

    manifest = fuzz_manifest(
        args.seed,
        args.count,
        machines or tuple(MACHINES),
        pruns,
        violations,
    )
    text = manifest_json(manifest)
    if args.manifest:
        from repro.ioutil import atomic_write_text

        atomic_write_text(args.manifest, text)
        print(f"manifest -> {args.manifest}", file=sys.stderr)
    if args.json:
        print(text, end="")
    else:
        n_violating = len(violations)
        print(
            f"pipeline fuzz: {len(pruns)} scenarios (seed {args.seed}), "
            f"{manifest['violation_count']} invariant violations in "
            f"{n_violating} scenarios"
        )
        for scenario_id in sorted(violations):
            for failure in violations[scenario_id]:
                print(f"  {scenario_id}: {failure}")
    if args.perf:
        _print_perf_stats()
    return 1 if violations else 0


def _cmd_metrics(args) -> int:
    import dataclasses
    import json

    from repro.obs import history as obs_history

    if args.action == "regress":
        from repro.obs.regress import render_regress, run_regress

        report = run_regress(command=args.only_command)
        if args.json:
            payload = {
                "current_session": report.current_session,
                "current_command": report.current_command,
                "notes": report.notes,
                "ok": report.ok,
                "comparisons": [
                    dataclasses.asdict(c) for c in report.comparisons
                ],
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(render_regress(report))
        return report.exit_code

    # metrics history
    if args.heal:
        healed = obs_history.quarantine_corrupt()
        if healed:
            print(
                f"history: quarantined {healed} corrupt line(s)",
                file=sys.stderr,
            )
    records, corrupt = obs_history.read_history()
    if args.limit and args.limit > 0:
        records = records[-args.limit:]
    if args.json:
        for record in records:
            print(json.dumps(record, sort_keys=True))
        return 0
    path = obs_history.history_path()
    print(f"metrics history: {path}")
    if corrupt:
        print(
            f"  ({len(corrupt)} corrupt line(s); "
            "heal with `repro metrics history --heal`)"
        )
    if not records:
        print("  (no records; model-running commands append one each)")
        return 0
    for record in records:
        metrics = record.get("metrics") or {}
        print(
            f"  {record.get('session', '?'):>12s}  "
            f"{record.get('command', '?'):<12s} "
            f"exit={record.get('exit_code', '?')} "
            f"wall={record.get('wall_seconds', 0.0):.3f}s "
            f"metrics={len(metrics)} "
            f"model={record.get('model_version', '?')}"
        )
    return 0


def _cmd_analyze(args) -> int:
    from repro.obs.roofline import (
        analyze_roofline,
        render_roofline,
        roofline_json,
        roofline_records,
    )

    workloads = None
    if args.small:
        from repro.kernels.workloads import (
            small_beam_steering,
            small_corner_turn,
            small_cslc,
        )

        workloads = {
            "corner_turn": small_corner_turn(),
            "cslc": small_cslc(),
            "beam_steering": small_beam_steering(),
        }
    points = analyze_roofline(workloads, traced=args.traced)
    if args.json:
        print(roofline_json(points))
    else:
        print(render_roofline(points))
    if args.html:
        from repro.obs.dashboard import write_dashboard
        from repro.obs.history import read_history

        history_records, _ = read_history()
        timeline = None
        try:
            from repro.trace import timeline_svg, trace_run

            kwargs = (
                {"workload": workloads["corner_turn"]} if workloads else {}
            )
            _, tracer = trace_run("corner_turn", "viram", **kwargs)
            timeline = timeline_svg(tracer)
        except Exception:  # noqa: BLE001 - dashboard extra, never fatal
            timeline = None
        write_dashboard(
            args.html, history_records, roofline_records(points),
            timeline=timeline,
        )
        print(f"dashboard -> {args.html}", file=sys.stderr)
    return 0


def _cmd_doctor(args) -> int:
    from repro.resilience import doctor

    results = doctor.run_doctor()
    if args.json:
        import json

        print(json.dumps(doctor.doctor_json(results), indent=2,
                         sort_keys=True))
    else:
        print(doctor.render_doctor(results))
    return doctor.exit_code(results)


def _cmd_serve(args) -> int:
    from repro.service.runtime import ServiceConfig
    from repro.service.server import serve

    config = ServiceConfig(
        max_queue=args.max_queue,
        workers=args.workers,
        jobs=args.jobs,
        default_deadline_s=args.deadline,
    )
    census = serve(
        host=args.host,
        port=args.port,
        config=config,
        ready_file=args.ready_file,
    )
    print(
        "serve: drained — "
        + ", ".join(f"{k}={v}" for k, v in sorted(census.items())),
        file=sys.stderr,
    )
    return 0


def _cmd_experiments(_args) -> int:
    from repro.eval.experiments import EXPERIMENTS

    for experiment_id in EXPERIMENTS:
        print(experiment_id)
    return 0


def _cmd_list(_args) -> int:
    from repro.mappings.registry import KERNELS, MACHINES

    print("kernels: " + ", ".join(KERNELS))
    print("machines:", ", ".join(MACHINES))
    print(
        "options:  cslc/raw: balanced=, streamed_fft=; "
        "corner_turn/imagine: via_network_port=; "
        "beam_steering/imagine: tables_in_srf=; "
        "cslc/imagine: independent_ffts="
    )
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "trace": _cmd_trace,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "report": _cmd_report,
    "sensitivity": _cmd_sensitivity,
    "check": _cmd_check,
    "cache": _cmd_cache,
    "pipeline": _cmd_pipeline,
    "metrics": _cmd_metrics,
    "analyze": _cmd_analyze,
    "doctor": _cmd_doctor,
    "serve": _cmd_serve,
    "experiments": _cmd_experiments,
    "list": _cmd_list,
}

#: Commands that run the model (or its checks): these open a
#: flight-recorder session and append a metrics-history record.
#: Read-only browsers (table/figure/list/experiments/cache) and the obs
#: layer's own commands (metrics/analyze/doctor) stay out so the gate's
#: "current" record is always real model-running evidence.
_SESSION_COMMANDS = (
    "run", "trace", "report", "sensitivity", "check", "pipeline", "serve",
)

#: Session commands whose sweep leaves every registered pair in the run
#: cache, making the deterministic per-pair metrics free to read back.
_METRIC_COMMANDS = ("report",)


def _warm_report_seconds(wall: float) -> Optional[float]:
    """``wall`` iff the report that just finished ran fully *warm* —
    every simulated cell answered by the cache tiers (no disk misses, no
    fresh writes, at least one hit).  Cold and partially-cold reports
    return ``None`` so the warm-latency history metric only ever
    aggregates like-for-like runs — mixing a cold wall-clock into the
    ``run.warm_report_seconds`` baseline would blow the gate's band."""
    try:
        from repro.perf.diskcache import DISK_CACHE

        stats = DISK_CACHE.stats()
        if (
            stats.get("misses", 1) == 0
            and stats.get("writes", 1) == 0
            and stats.get("hits", 0) > 0
        ):
            return float(wall)
    except Exception:  # noqa: BLE001 - observation only
        pass
    return None


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Commands in :data:`_SESSION_COMMANDS` run inside a flight-recorder
    session (an append-only event ledger, see docs/observability.md)
    and, on success, append one record to the metrics history.  The obs
    layer is observation-only: any failure inside it is swallowed and
    the command's stdout and exit code are exactly what they would have
    been with ``REPRO_OBS=0``.
    """
    import time as _time

    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    if args.command not in _SESSION_COMMANDS:
        try:
            return handler(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    raw_argv = list(sys.argv[1:]) if argv is None else list(argv)
    started = _time.monotonic()
    recorder = None
    try:
        from repro.obs.ledger import end_session, start_session

        recorder = start_session(args.command, raw_argv)
    except Exception:  # noqa: BLE001 - observation only
        recorder = None
    code = 1
    try:
        try:
            code = handler(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            code = 1
        return code
    finally:
        if recorder is not None:
            wall = _time.monotonic() - started
            try:
                end_session(code)
            except Exception:  # noqa: BLE001 - observation only
                pass
            if code == 0:
                try:
                    from repro.obs.history import (
                        append_history,
                        build_record,
                        deterministic_run_metrics,
                    )

                    metrics = (
                        deterministic_run_metrics()
                        if args.command in _METRIC_COMMANDS
                        else None
                    )
                    if metrics is not None:
                        warm = _warm_report_seconds(wall)
                        if warm is not None:
                            metrics["run.warm_report_seconds"] = warm
                    append_history(
                        build_record(
                            args.command,
                            raw_argv,
                            session=recorder.session,
                            exit_code=code,
                            wall_seconds=wall,
                            metrics=metrics,
                        )
                    )
                except Exception:  # noqa: BLE001 - observation only
                    pass


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
