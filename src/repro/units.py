"""Small unit-conversion helpers shared across the library.

The paper mixes several unit systems — cycles, seconds at per-machine clock
rates, 32-bit words, bytes, GOPS/GFLOPS.  Centralising the conversions keeps
the machine models and the evaluation harness consistent.
"""

from __future__ import annotations

#: Number of bytes in one 32-bit data word (the paper's unit of bandwidth).
WORD_BYTES = 4

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

KIB = 1024
MIB = 1024 * 1024


def words_to_bytes(words: float) -> float:
    """Convert a count of 32-bit words to bytes."""
    return words * WORD_BYTES


def bytes_to_words(nbytes: float) -> float:
    """Convert bytes to 32-bit words (may be fractional)."""
    return nbytes / WORD_BYTES


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Execution time in seconds for ``cycles`` at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float) -> float:
    """Cycle count corresponding to ``seconds`` at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return seconds * clock_hz


def gflops(flops_per_cycle: float, clock_hz: float) -> float:
    """Peak GFLOP/s given per-cycle floating-point throughput."""
    return flops_per_cycle * clock_hz / GIGA


def kilocycles(cycles: float) -> float:
    """Cycles expressed in units of 10^3 cycles (the paper's Table 3 unit)."""
    return cycles / KILO
