"""Tensorized sweep engine: whole parameter grids as numpy batches.

A dense sweep — the sensitivity study, a calibration grid, a scaling
family — produces many cells that differ *only* in float calibration
constants: same kernel, same machine, same workload, same mapping
options.  Evaluating them one ``registry.run`` at a time repeats the
calibration-independent heavy lifting (address-stream construction, DRAM
activation counting, cache-trace simulation, functional references) once
per cell, even though it is identical across the grid.

Every mapping module therefore splits its ``run`` into a ``_structure``
pass and a vectorised ``_evaluate`` (see :mod:`repro.mappings.batch`),
exposed through ``run_batch(calibrations, **kwargs)`` entry points in
:data:`repro.mappings.registry._BATCH_REGISTRY`.  This module is the
piece that lets the *planner* use them:

* :func:`plan_units` partitions a pending (post-dedup, post-cache-probe)
  request list into **dispatch units**: :class:`BatchGroup` for runs of
  cells that share a batchable signature (same kernel/machine, same
  non-calibration kwargs, same structural calibration fields) and
  :class:`SingleCell` for everything else — pairs without a batch entry
  point, uncacheable kwargs, singleton groups, and *all* cells while a
  tracer is active (a traced run must execute per cell to emit its
  spans; see the ``tracer_fallbacks`` counter).
* :func:`execute_unit` runs one unit — a batch group through its batch
  runner, a single through ``registry.run`` — and round-trips batch
  results into the exact per-cell cache entries the scalar path would
  have written: each cell is validated by the post-run hook and inserted
  under its *original* content key, so memoization, the disk tier,
  golden snapshots, and the differential oracles observe no difference.

Bit-identity of the batch path is by construction — ``run()`` *is* the
batch of one — and is continuously re-proven by the
``invariant.tensor.*`` differential check (:mod:`repro.check.tensor`).

Engine activity is exported as the ``perf.tensor`` TELEMETRY namespace
via :data:`TENSOR_STATS` and shown by ``repro report --perf``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.calibration import Calibration
from repro.perf import timers
from repro.perf.cache import RUN_CACHE, cache_key
from repro.perf.diskcache import DISK_CACHE
from repro.trace.tracer import active_tracer

#: One sweep cell: (kernel, machine, mapping kwargs).
RunRequest = Tuple[str, str, Dict[str, Any]]


class TensorStats:
    """Thread-safe counters for the tensor engine (TELEMETRY namespace
    ``perf.tensor``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.batches = 0
        self.batched_cells = 0
        self.fallback_cells = 0
        self.tracer_fallbacks = 0

    def note_batch(self, cells: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_cells += cells

    def note_fallback(self, cells: int = 1, tracer: bool = False) -> None:
        with self._lock:
            self.fallback_cells += cells
            if tracer:
                self.tracer_fallbacks += cells

    def reset(self) -> None:
        with self._lock:
            self.batches = 0
            self.batched_cells = 0
            self.fallback_cells = 0
            self.tracer_fallbacks = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "batches": self.batches,
                "batched_cells": self.batched_cells,
                "fallback_cells": self.fallback_cells,
                "tracer_fallbacks": self.tracer_fallbacks,
            }

    def format_stats(self) -> str:
        s = self.stats()
        return (
            f"tensor engine: {s['batched_cells']} cells batched in "
            f"{s['batches']} batches, {s['fallback_cells']} per-cell "
            f"fallbacks ({s['tracer_fallbacks']} traced)"
        )


#: Process-wide engine counters, exported as TELEMETRY ``perf.tensor``.
TENSOR_STATS = TensorStats()


@dataclass
class SingleCell:
    """A per-cell dispatch unit; executes through ``registry.run``."""

    request: RunRequest
    #: Index into the pending list this unit's one result fills.
    positions: List[int]


@dataclass
class BatchGroup:
    """A tensor-batchable dispatch unit: one structure pass, many cells.

    All cells share ``kernel``/``machine`` and ``base_kwargs`` (the
    mapping kwargs minus ``calibration``); they differ only in the float
    calibration constants carried by ``calibrations``.  ``keys`` and
    ``cell_kwargs`` preserve each cell's *original* content key and
    kwargs so results round-trip into exactly the cache entries and
    validation calls the scalar path would have produced.
    """

    kernel: str
    machine: str
    base_kwargs: Dict[str, Any]
    calibrations: List[Calibration] = field(default_factory=list)
    keys: List[Optional[str]] = field(default_factory=list)
    cell_kwargs: List[Dict[str, Any]] = field(default_factory=list)
    positions: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.positions)


DispatchUnit = Union[SingleCell, BatchGroup]


def plan_units(
    pairs: Sequence[Tuple[RunRequest, Optional[str]]],
) -> List[DispatchUnit]:
    """Partition pending ``(request, content_key)`` pairs into dispatch
    units, preserving first-appearance order.

    Cells group when they share a *batch signature* — kernel, machine,
    the content key of the non-calibration kwargs, and the structural
    calibration fields (:data:`repro.mappings.batch.STRUCTURAL_CAL_FIELDS`)
    — and the pair has a batch entry point.  Groups of one demote back to
    :class:`SingleCell` (a batch of one would be correct, but the scalar
    path skips the grouping bookkeeping).  An active tracer forces every
    cell per-cell: traced runs must execute individually so their spans
    attach to the right run.  Engine counters are updated here, in the
    planning process, so pool workers need not report back.
    """
    from repro.mappings import batch, registry
    from repro.mappings.base import resolve_calibration

    tracing = active_tracer() is not None
    units: List[DispatchUnit] = []
    groups: Dict[Tuple, BatchGroup] = {}

    for position, (request, key) in enumerate(pairs):
        kernel, machine, kwargs = request
        single = SingleCell(request=request, positions=[position])
        if tracing:
            TENSOR_STATS.note_fallback(tracer=True)
            units.append(single)
            continue
        if (
            registry.batch_runner(kernel, machine) is None
            or "cache" in kwargs
            or "calibration" in kwargs
            and kwargs["calibration"] is not None
            and not isinstance(kwargs["calibration"], Calibration)
        ):
            TENSOR_STATS.note_fallback()
            units.append(single)
            continue
        base_kwargs = {
            k: v for k, v in kwargs.items() if k != "calibration"
        }
        base_key = cache_key(kernel, machine, base_kwargs)
        if base_key is None:
            # Some kwarg has no canonical content encoding; without a
            # signature the cell cannot prove it shares a structure.
            TENSOR_STATS.note_fallback()
            units.append(single)
            continue
        cal = resolve_calibration(kwargs.get("calibration"))
        signature = (
            kernel,
            machine,
            base_key,
            batch.structural_signature(batch.CAL_GROUP[machine], cal),
        )
        group = groups.get(signature)
        if group is None:
            group = BatchGroup(
                kernel=kernel, machine=machine, base_kwargs=base_kwargs
            )
            groups[signature] = group
            units.append(group)
        group.calibrations.append(cal)
        group.keys.append(key)
        group.cell_kwargs.append(kwargs)
        group.positions.append(position)

    planned: List[DispatchUnit] = []
    for unit in units:
        if isinstance(unit, BatchGroup) and len(unit) == 1:
            TENSOR_STATS.note_fallback()
            planned.append(
                SingleCell(
                    request=(unit.kernel, unit.machine, unit.cell_kwargs[0]),
                    positions=unit.positions,
                )
            )
            continue
        if isinstance(unit, BatchGroup):
            TENSOR_STATS.note_batch(len(unit))
        planned.append(unit)
    return planned


def run_group(group: BatchGroup) -> List[Any]:
    """Execute one batch group; returns results in cell order.

    The batch runner shares one structure pass across the cells; each
    result is then treated exactly as a fresh scalar run — post-run
    validated against its original kwargs and inserted into both cache
    tiers under its original content key — so downstream consumers
    cannot tell the paths apart.
    """
    from repro.mappings import registry

    runner = registry.batch_runner(group.kernel, group.machine)
    if runner is None:  # pragma: no cover - plan_units guarantees it
        raise RuntimeError(
            f"no batch runner for {group.kernel}/{group.machine}"
        )
    with timers.timer(f"batch:{group.kernel}/{group.machine}"):
        results = runner(group.calibrations, **group.base_kwargs)
    for result, kwargs, key in zip(results, group.cell_kwargs, group.keys):
        registry.post_run_validate(result, kwargs)
        if key is not None:
            if RUN_CACHE.enabled:
                RUN_CACHE.insert(key, result)
            DISK_CACHE.insert(key, result)
    return list(results)


def execute_unit(unit: DispatchUnit) -> List[Any]:
    """Run one dispatch unit; returns one result per position (order
    matching ``unit.positions``)."""
    if isinstance(unit, BatchGroup):
        return run_group(unit)
    from repro.perf import executor

    return [executor._execute(unit.request)]
