"""Persistent, content-addressed disk tier for the run cache.

:data:`repro.perf.cache.RUN_CACHE` memoizes runs *within* one process;
this module adds tier 2 — a file-per-key store that survives process
boundaries, so a CI job, a fresh CLI invocation, or a pool worker can
serve a run that some earlier process already simulated.

Layout and integrity
--------------------
Entries live under ``<root>/<model version stamp>/<key[:2]>/<key>.run``.
The *root* resolves, in order, to ``$REPRO_DISK_CACHE_DIR``,
``$XDG_CACHE_HOME/repro/runs``, or ``~/.cache/repro/runs`` — re-read on
every operation so tests and subprocesses can redirect it.  The stamp
directory comes from :func:`repro.perf.cache.model_version_stamp`: any
modeling change (library version, default calibration) lands in a fresh
namespace and can never serve stale results.

Each entry is ``MAGIC + sha256(payload) + payload`` where the payload is
the pickled :class:`~repro.arch.base.KernelRun`.  Reads verify the
digest; a corrupt or torn file is counted and reported as a miss —
never served.

Self-healing
------------
A damaged store heals instead of wedging.  An entry that fails
verification is *moved* to ``<root>/quarantine/`` (never deleted — the
bytes are forensic evidence) together with a structured JSON incident
record; the key recomputes on the next run.  A transient read error is
retried once before the lookup degrades to a miss.  A stale
interprocess lock file — holder pid dead, file old — is detected and
broken before acquisition.  ``lookup`` never raises on a damaged store:
every failure path counts, heals what it can, and returns a miss.
Recovery actions are tallied both here (``quarantined``) and under the
``resilience.*`` telemetry namespace.

Concurrency
-----------
Writes go to a unique temporary file in the entry's directory and are
published with :func:`os.replace`, which is atomic on POSIX: two
processes racing on the same key both leave a complete, valid entry and
readers can never observe a torn write.  Pruning holds the
inter-process advisory lock (``fcntl.flock`` on ``<root>/.lock``) for
the whole scan-and-evict pass, re-checks each entry's mtime immediately
before unlinking (an entry refreshed by a concurrent reader or
re-published by a concurrent inserter since the scan is spared), and
tolerates entries vanishing underneath it.

Opt-outs
--------
``REPRO_DISK_CACHE=0`` disables the tier globally; the CLI's
``--no-disk-cache`` calls :meth:`DiskCache.disable` for one invocation.
Bypassed lookups are counted so telemetry shows the tier was skipped,
not silently absent.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import pickle
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.trace.tracer import active_tracer

#: Entry header: identifies the format; followed by the payload digest.
MAGIC = b"repro-diskcache-v1\n"

_DIGEST_LEN = 64  # sha256 hexdigest

#: A lock file whose recorded holder is dead counts as stale once it is
#: this many seconds old (age guards against breaking a lock whose
#: holder pid we simply failed to observe mid-handoff).
STALE_LOCK_AGE = 60.0


def _chaos_active() -> bool:
    """Cheap gate for the chaos-injection hooks (hot paths)."""
    return bool(os.environ.get("REPRO_CHAOS"))


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (conservative: unknown
    errors are treated as alive — never break a lock on a guess)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def _default_root() -> Path:
    env = os.environ.get("REPRO_DISK_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path("~/.cache").expanduser()
    return base / "repro" / "runs"


class DiskCache:
    """Atomic file-per-key store of pickled runs with integrity hashes.

    All mutating operations are safe under concurrent processes (atomic
    publish, tolerant prune); the in-process counters are guarded by a
    thread lock.  ``max_entries``/``max_bytes`` bound the store; inserts
    trigger an opportunistic prune every ``prune_interval`` writes.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        max_entries: int = 4096,
        max_bytes: int = 512 * 1024 * 1024,
        prune_interval: int = 128,
        respect_env: bool = True,
    ) -> None:
        self._directory = Path(directory) if directory is not None else None
        self._respect_env = bool(respect_env)
        self._forced_off = False
        self._lock = threading.Lock()
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.prune_interval = int(prune_interval)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.corrupt = 0
        self.bypasses = 0
        self.quarantined = 0
        self.io_retries = 0

    # -- configuration -------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether lookups/inserts touch the disk at all.

        Re-reads ``REPRO_DISK_CACHE`` on each access so environment
        changes (tests, subprocess setup) take effect immediately.
        """
        if self._forced_off:
            return False
        if not self._respect_env:
            return True
        return os.environ.get("REPRO_DISK_CACHE", "1") != "0"

    def enable(self) -> None:
        self._forced_off = False

    def disable(self) -> None:
        self._forced_off = True

    @contextlib.contextmanager
    def disabled(self) -> Iterator[None]:
        """Force the tier off for a scope, restoring the prior state.

        Restores ``_forced_off`` rather than calling :meth:`enable`, so
        a surrounding ``--no-disk-cache`` opt-out survives the scope.
        """
        prev = self._forced_off
        self._forced_off = True
        try:
            yield
        finally:
            self._forced_off = prev

    def root(self) -> Path:
        """The cache root (env-resolved unless pinned at construction)."""
        return self._directory if self._directory is not None else _default_root()

    def stamp_dir(self) -> Path:
        """The directory holding entries for the current model version."""
        from repro.perf.cache import model_version_stamp

        return self.root() / model_version_stamp()

    def _path(self, key: str) -> Path:
        return self.stamp_dir() / key[:2] / f"{key}.run"

    def quarantine_dir(self) -> Path:
        """Where verification failures are preserved for forensics."""
        return self.root() / "quarantine"

    # -- counters ------------------------------------------------------

    def _count(self, attr: str, trace_name: str) -> None:
        with self._lock:
            setattr(self, attr, getattr(self, attr) + 1)
        tracer = active_tracer()
        if tracer is not None:
            tracer.count(trace_name)

    def note_bypass(self) -> None:
        """Record one lookup/insert skipped because the tier is off."""
        self._count("bypasses", "perf.diskcache.bypass")

    # -- encoding ------------------------------------------------------

    @staticmethod
    def encode(value: Any) -> bytes:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        return MAGIC + digest + b"\n" + payload

    @staticmethod
    def decode(blob: bytes) -> Any:
        """Verified payload of one entry; raises ``ValueError`` on any
        corruption (bad magic, digest mismatch, truncated pickle)."""
        if not blob.startswith(MAGIC):
            raise ValueError("disk-cache entry: bad magic header")
        body = blob[len(MAGIC):]
        digest, sep, payload = (
            body[:_DIGEST_LEN],
            body[_DIGEST_LEN:_DIGEST_LEN + 1],
            body[_DIGEST_LEN + 1:],
        )
        if sep != b"\n" or len(digest) != _DIGEST_LEN:
            raise ValueError("disk-cache entry: truncated header")
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            raise ValueError("disk-cache entry: payload digest mismatch")
        try:
            return pickle.loads(payload)
        except Exception as exc:  # pickle raises many concrete types
            raise ValueError(f"disk-cache entry: unpicklable ({exc})") from exc

    # -- store operations ----------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether an entry file exists (no counters, no verification)."""
        return self.enabled and self._path(key).exists()

    def _read_entry(self, path: Path) -> Optional[bytes]:
        """The entry's bytes, retrying one transient I/O error; ``None``
        when the entry is absent or both attempts failed."""
        for attempt in (0, 1):
            try:
                if _chaos_active():
                    from repro.resilience import chaos

                    chaos.on_disk_read(path)
                return path.read_bytes()
            except FileNotFoundError:
                return None
            except OSError:
                from repro.resilience.stats import RESILIENCE

                RESILIENCE.note("io_errors")
                if attempt == 0:
                    with self._lock:
                        self.io_retries += 1
                    RESILIENCE.note("io_retries")
        return None

    def _quarantine(self, key: str, path: Path, reason: str) -> Dict[str, Any]:
        """Move a damaged entry (and the evidence) out of the store.

        The file is renamed into ``quarantine/`` — never deleted — and a
        structured incident record is written beside it, so a corruption
        event can be investigated after the fact.  Returns the incident
        record; never raises (a failing quarantine degrades to unlink,
        and a failing unlink to a no-op — the lookup still misses).
        """
        incident: Dict[str, Any] = {
            "key": key,
            "reason": reason,
            "source": str(path),
            "action": "quarantined",
            "pid": os.getpid(),
            "detected_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime()
            ),
        }
        try:
            incident["size"] = path.stat().st_size
        except OSError:
            pass
        qdir = self.quarantine_dir()
        dest = qdir / f"{key}.run"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
            incident["quarantined_to"] = str(dest)
            dest.with_suffix(".incident.json").write_text(
                json.dumps(incident, indent=2, sort_keys=True) + "\n"
            )
        except OSError:
            incident["action"] = "unlinked"
            try:
                path.unlink()
            except OSError:
                incident["action"] = "left-in-place"
        with self._lock:
            self.quarantined += 1
        from repro.resilience.stats import RESILIENCE

        RESILIENCE.note("quarantined")
        tracer = active_tracer()
        if tracer is not None:
            tracer.count("perf.diskcache.quarantined")
        return incident

    def incidents(self) -> List[Dict[str, Any]]:
        """Every parseable incident record in the quarantine, sorted by
        key (malformed records are skipped, not raised)."""
        out: List[Dict[str, Any]] = []
        qdir = self.quarantine_dir()
        if not qdir.is_dir():
            return out
        for record in sorted(qdir.glob("*.incident.json")):
            try:
                out.append(json.loads(record.read_text()))
            except (OSError, ValueError):
                continue
        return out

    def lookup(self, key: str) -> Optional[Any]:
        """The stored run, digest-verified, or ``None``.

        This method never raises on a damaged store.  A verification
        failure counts under ``corrupt`` *and* ``misses`` and moves the
        file to quarantine with an incident record, so a flipped bit
        can never be served and never permanently wedges the key; a
        transient read error is retried once before degrading to a
        miss.
        """
        if not self.enabled:
            self.note_bypass()
            return None
        path = self._path(key)
        blob = self._read_entry(path)
        if blob is None:
            self._count("misses", "perf.diskcache.miss")
            return None
        try:
            value = self.decode(blob)
        except ValueError as exc:
            self._count("corrupt", "perf.diskcache.corrupt")
            self._count("misses", "perf.diskcache.miss")
            self._quarantine(key, path, str(exc))
            return None
        try:
            os.utime(path)  # refresh LRU clock for pruning
        except OSError:
            pass
        self._count("hits", "perf.diskcache.hit")
        return value

    def insert(self, key: str, value: Any) -> bool:
        """Atomically publish ``value`` under ``key``.

        Returns whether a write happened; an unpicklable value or a
        read-only filesystem degrades to a no-op rather than an error —
        the disk tier is an accelerator, never a correctness dependency.
        """
        if not self.enabled:
            self.note_bypass()
            return False
        try:
            blob = self.encode(value)
        except Exception:
            return False
        path = self._path(key)
        tmp = path.with_name(f".tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self._count("writes", "perf.diskcache.write")
        if _chaos_active():
            from repro.resilience import chaos

            chaos.on_disk_insert(path)
        if self.prune_interval and self.writes % self.prune_interval == 0:
            self.prune()
        return True

    def evict(self, key: str) -> bool:
        """Drop one entry; returns whether a file was removed."""
        try:
            self._path(key).unlink()
        except OSError:
            return False
        return True

    def _entries(self) -> List[Tuple[Path, float, int]]:
        """(path, mtime, size) of every entry of the current stamp."""
        out: List[Tuple[Path, float, int]] = []
        stamp_dir = self.stamp_dir()
        if not stamp_dir.is_dir():
            return out
        for path in stamp_dir.glob("*/*.run"):
            try:
                stat = path.stat()
            except OSError:
                continue  # vanished under a concurrent prune/evict
            out.append((path, stat.st_mtime, stat.st_size))
        return out

    def keys(self) -> List[str]:
        """Stored keys of the current stamp, oldest first."""
        entries = sorted(self._entries(), key=lambda e: e[1])
        return [path.stem for path, _, _ in entries]

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Remove oldest entries until within the caps; returns the
        number evicted.  Safe under contention: concurrent pruners are
        serialised by the advisory lock (held for the whole
        scan-and-evict pass) where available; an entry touched since the
        scan (``os.utime`` on a hit, re-publish on a racing insert) is
        re-checked by mtime immediately before unlink and spared; an
        entry that vanished underneath us is simply skipped."""
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        removed = 0
        with self._interprocess_lock():
            entries = sorted(self._entries(), key=lambda e: e[1])
            total = sum(size for _, _, size in entries)
            while entries and (
                len(entries) > max_entries or total > max_bytes
            ):
                path, mtime, size = entries.pop(0)
                try:
                    if path.stat().st_mtime > mtime:
                        continue  # refreshed since the scan: no longer LRU
                    path.unlink()
                except FileNotFoundError:
                    continue  # a sibling pruner/evictor got here first
                except OSError:
                    continue
                total -= size
                removed += 1
        if removed:
            with self._lock:
                self.evictions += removed
            tracer = active_tracer()
            if tracer is not None:
                tracer.count("perf.diskcache.evict", removed)
        return removed

    def clear(self) -> int:
        """Remove every entry (all stamps) and reset the counters;
        returns the number of entry files removed."""
        import shutil

        root = self.root()
        removed = 0
        if root.is_dir():
            removed = sum(1 for _ in root.glob("*/*/*.run"))
            shutil.rmtree(root, ignore_errors=True)
        with self._lock:
            self.hits = self.misses = self.writes = 0
            self.evictions = self.corrupt = self.bypasses = 0
            self.quarantined = self.io_retries = 0
        return removed

    # -- integrity and fault hooks -------------------------------------

    def verify(self) -> List[str]:
        """Digest-verify every entry of the current stamp; returns the
        keys that failed (each counted under ``corrupt``)."""
        bad: List[str] = []
        for path, _, _ in self._entries():
            try:
                self.decode(path.read_bytes())
            except (OSError, ValueError):
                self._count("corrupt", "perf.diskcache.corrupt")
                bad.append(path.stem)
        return bad

    def tamper(self, key: str, mutate: Callable[[Any], None]) -> bool:
        """Rewrite the entry under ``key`` with ``mutate`` applied and a
        *valid* digest — the stale-but-self-consistent corruption only a
        differential oracle can catch.  Exists for
        :mod:`repro.check.faults`; production code has no business
        calling it.  Returns whether the key was present."""
        path = self._path(key)
        try:
            value = self.decode(path.read_bytes())
        except (OSError, ValueError):
            return False
        mutate(value)
        path.write_bytes(self.encode(value))
        return True

    def corrupt_bytes(self, key: str, offset: int = -1) -> bool:
        """Flip one payload byte of the entry on disk (digest left
        stale), modelling media corruption.  For fault injection only.
        Returns whether the key was present."""
        path = self._path(key)
        try:
            blob = bytearray(path.read_bytes())
        except OSError:
            return False
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        return True

    # -- reporting -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        return sum(size for _, _, size in self._entries())

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "bytes": self.total_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "io_retries": self.io_retries,
            "bypasses": self.bypasses,
            "enabled": int(self.enabled),
        }

    def format_stats(self) -> str:
        s = self.stats()
        state = "" if s["enabled"] else " (disabled)"
        return (
            f"disk cache: {s['hits']} hits, {s['misses']} misses, "
            f"{s['writes']} writes, {s['evictions']} evictions, "
            f"{s['corrupt']} corrupt, {s['quarantined']} quarantined, "
            f"{s['bypasses']} bypasses, "
            f"{s['entries']} entries ({s['bytes'] / 1e6:.1f} MB)"
            f"{state} at {self.root()}"
        )

    # -- locking -------------------------------------------------------

    def _interprocess_lock(self):
        """Advisory lock over prune; degrades to a no-op where
        ``fcntl`` or the lock file is unavailable."""
        return _FlockGuard(self.root() / ".lock")


class _FlockGuard:
    """Context manager: ``fcntl.flock`` on a lock file, best-effort.

    The holder records ``{"pid", "time"}`` into the lock file once the
    flock is held.  Before acquiring, a lock file whose *recorded*
    holder is dead and whose mtime is older than :data:`STALE_LOCK_AGE`
    is broken (unlinked) — the leftover of a SIGKILLed or rebooted
    process cannot wedge pruning forever.  The break is deliberately
    conservative: an empty or unparseable record is left alone (the
    kernel releases a real ``flock`` with its holder anyway), and a
    live recorded pid is never broken.
    """

    def __init__(self, path: Path) -> None:
        self._path = path
        self._fh: Optional[io.IOBase] = None

    def _break_if_stale(self) -> None:
        """Unlink the lock file iff its recorded holder is provably
        dead and the file has not been touched recently."""
        try:
            raw = self._path.read_bytes()
            age = time.time() - self._path.stat().st_mtime
        except OSError:
            return
        try:
            record = json.loads(raw)
            pid = int(record["pid"])
        except (KeyError, TypeError, ValueError):
            return  # no recorded holder: nothing provable, leave it
        if _pid_alive(pid) or age < STALE_LOCK_AGE:
            return
        try:
            self._path.unlink()
        except OSError:
            return
        from repro.resilience.stats import RESILIENCE

        RESILIENCE.note("locks_broken")
        tracer = active_tracer()
        if tracer is not None:
            tracer.count("perf.diskcache.lock_broken")

    #: Fixed width of the holder record: rewriting the same bytes in
    #: place (space-padded, JSON ignores trailing whitespace) never
    #: changes the file size, so taking the lock costs no journal
    #: commit — an ftruncate per acquisition dominated the cold path.
    _HOLDER_BYTES = 64

    def _record_holder(self) -> None:
        """Write our pid into the held lock file (flock is exclusive,
        so the in-place overwrite cannot race another holder)."""
        try:
            data = json.dumps(
                {"pid": os.getpid(), "time": time.time()}
            ).encode("ascii").ljust(self._HOLDER_BYTES)
            self._fh.seek(0, os.SEEK_END)
            size = self._fh.tell()
            self._fh.seek(0)
            self._fh.write(data)
            if size > len(data):
                # A longer legacy record: shrink once, then the fixed
                # width holds forever.
                self._fh.truncate(len(data))
            self._fh.flush()
        except OSError:
            pass

    def __enter__(self) -> "_FlockGuard":
        fd = None
        try:
            import fcntl

            self._path.parent.mkdir(parents=True, exist_ok=True)
            if _chaos_active():
                from repro.resilience import chaos

                chaos.on_lock_acquire(self._path)
            self._break_if_stale()
            # O_RDWR, not append mode: append-mode writes land at the
            # end regardless of seek position, which would grow the
            # lock file on every acquisition.
            fd = os.open(str(self._path), os.O_RDWR | os.O_CREAT, 0o644)
            self._fh = os.fdopen(fd, "r+b")
            fd = None  # owned by the file object now
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
            self._record_holder()
        except (ImportError, OSError):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
            if self._fh is not None:
                self._fh.close()
            self._fh = None
        return self

    def __exit__(self, *exc_info) -> None:
        if self._fh is not None:
            try:
                import fcntl

                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            except (ImportError, OSError):
                pass
            self._fh.close()


def __getattr__(name: str):
    """Lazy singleton: the process-wide tier 2 is a packed-index store
    (:class:`repro.perf.index.PackedDiskCache`), materialised on first
    access.  Keeping the construction behind a module ``__getattr__``
    breaks the import cycle with :mod:`repro.perf.index` and keeps
    ``import repro.perf.diskcache`` free of any store I/O — part of the
    CLI's lazy-import fast path."""
    if name == "DISK_CACHE":
        from repro.perf.index import PackedDiskCache

        instance = PackedDiskCache()
        globals()["DISK_CACHE"] = instance
        return instance
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
