"""Content-addressed memoization cache for kernel runs.

Every mapping in this library is a *pure function* of its arguments: the
machine models are constructed fresh inside each ``run``, the functional
matrices come from seeded generators, and no global state leaks in.
That determinism is what makes memoization safe — two calls with equal
``(kernel, machine, kwargs)`` return value-identical :class:`KernelRun`
records, so the second can be served from a cache.

The key is a content hash (:func:`cache_key`) over a canonical encoding
of the arguments: frozen dataclasses (workloads, calibrations) hash by
type and field values, numpy arrays by dtype/shape/bytes, containers
element-wise.  Arguments the encoder does not recognise make the call
*uncacheable* — it runs normally and is counted as a bypass, never an
error.

Returned runs are defensively independent: the cache stores and serves
deep copies, so mutating a result (its ``metrics`` dict, its ``output``
array) can never corrupt later hits.

``repro.mappings.registry.run`` consults the process-wide
:data:`RUN_CACHE`; disable it globally with ``RUN_CACHE.disable()`` or
the ``REPRO_RUN_CACHE=0`` environment variable, or per call with
``run(..., cache=False)`` (the opt-out for deliberately stateful or
experimental mappings).
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.trace.tracer import active_tracer


class _Uncacheable(Exception):
    """Internal: an argument has no canonical encoding."""


def _encode(obj: Any, parts: List[bytes]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``parts``.

    The encoding is injective across the supported types (every value is
    tagged with its type) and stable across processes and sessions — no
    ``id()``, no ``hash()``, no dict iteration order.
    """
    if obj is None or isinstance(obj, (bool, int)):
        parts.append(f"{type(obj).__name__}:{obj!r};".encode())
    elif isinstance(obj, float):
        # repr round-trips doubles exactly.
        parts.append(f"float:{obj!r};".encode())
    elif isinstance(obj, str):
        parts.append(f"str:{len(obj)}:".encode() + obj.encode() + b";")
    elif isinstance(obj, bytes):
        parts.append(f"bytes:{len(obj)}:".encode() + obj + b";")
    elif isinstance(obj, np.generic):
        _encode(obj.item(), parts)
    elif isinstance(obj, np.ndarray):
        parts.append(
            f"ndarray:{obj.dtype.str}:{obj.shape}:".encode()
            + hashlib.sha256(np.ascontiguousarray(obj).tobytes()).digest()
        )
    elif isinstance(obj, (tuple, list)):
        parts.append(f"{type(obj).__name__}[{len(obj)}](".encode())
        for item in obj:
            _encode(item, parts)
        parts.append(b")")
    elif isinstance(obj, Mapping):
        try:
            items = sorted(obj.items())
        except TypeError as exc:
            raise _Uncacheable(f"unsortable mapping keys in {obj!r}") from exc
        parts.append(f"map[{len(items)}](".encode())
        for key, value in items:
            _encode(key, parts)
            _encode(value, parts)
        parts.append(b")")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        parts.append(f"dc:{cls.__module__}.{cls.__qualname__}(".encode())
        for field in dataclasses.fields(obj):
            parts.append(field.name.encode() + b"=")
            _encode(getattr(obj, field.name), parts)
        parts.append(b")")
    else:
        raise _Uncacheable(f"no canonical encoding for {type(obj)!r}")


#: Lazily computed digest of everything that can change a modelled
#: number without appearing in the run arguments (see
#: :func:`model_version_stamp`).
_VERSION_STAMP: Optional[str] = None


def model_version_stamp() -> str:
    """Digest of the library version and the default calibration.

    Folded into every :func:`cache_key` (and used by the disk tier as
    its entry namespace) so that a modeling change — a version bump, a
    retuned default constant — invalidates every previously persisted
    entry instead of silently serving stale results.
    """
    global _VERSION_STAMP
    if _VERSION_STAMP is None:
        import repro
        from repro.calibration import DEFAULT_CALIBRATION

        parts: List[bytes] = [f"version={repro.__version__};".encode()]
        _encode(DEFAULT_CALIBRATION, parts)
        _VERSION_STAMP = hashlib.sha256(b"".join(parts)).hexdigest()[:16]
    return _VERSION_STAMP


def reset_model_version_stamp() -> None:
    """Drop the memoized stamp so the next call recomputes it (tests
    monkeypatching ``repro.__version__`` or the default calibration)."""
    global _VERSION_STAMP
    _VERSION_STAMP = None


def cache_key(
    kernel: str, machine: str, kwargs: Mapping[str, Any]
) -> Optional[str]:
    """Stable content hash of one run request, or ``None`` if any
    argument is uncacheable (caller should bypass the cache).  The hash
    covers the model version stamp, so keys minted before a modeling
    change can never collide with keys minted after it."""
    parts: List[bytes] = [
        f"{model_version_stamp()}|{kernel}|{machine}|".encode()
    ]
    try:
        _encode(dict(kwargs), parts)
    except _Uncacheable:
        return None
    return hashlib.sha256(b"".join(parts)).hexdigest()


def content_digest(obj: Any) -> Optional[str]:
    """Stable content hash of any cache-encodable value, or ``None``.

    Uses the same canonical encoding as :func:`cache_key` but *without*
    the model version stamp: the digest names the value itself (a
    scenario, a workload bundle), not a memoized model output, so it
    must survive calibration retunes and version bumps.  Scenario IDs
    (:mod:`repro.scenarios`) are built on this.
    """
    parts: List[bytes] = [b"content|"]
    try:
        _encode(obj, parts)
    except _Uncacheable:
        return None
    return hashlib.sha256(b"".join(parts)).hexdigest()


class RunCache:
    """Keyed store of completed runs with hit/miss/bypass counters.

    Entries are kept in LRU order and bounded by ``max_entries`` so a
    long sweep session cannot grow memory without bound.  All operations
    are lock-protected (the sweep executor's serial fallback may be
    driven from threads).
    """

    def __init__(self, enabled: bool = True, max_entries: int = 256) -> None:
        self._store: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._enabled = bool(enabled)
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def __len__(self) -> int:
        return len(self._store)

    def note_bypass(self) -> None:
        """Record one deliberately uncached run."""
        with self._lock:
            self.bypasses += 1
        tracer = active_tracer()
        if tracer is not None:
            tracer.count("perf.cache.bypass")

    def lookup(self, key: str) -> Optional[Any]:
        """An independent copy of the cached run, or ``None`` (counted
        as a hit or miss respectively)."""
        with self._lock:
            try:
                value = self._store[key]
            except KeyError:
                self.misses += 1
                hit = False
            else:
                self._store.move_to_end(key)
                self.hits += 1
                hit = True
        tracer = active_tracer()
        if tracer is not None:
            tracer.count("perf.cache.hit" if hit else "perf.cache.miss")
        if not hit:
            return None
        return copy.deepcopy(value)

    def insert(self, key: str, value: Any) -> None:
        """Store an independent copy of ``value`` under ``key``."""
        value = copy.deepcopy(value)
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)

    def keys(self) -> List[str]:
        """The stored keys, oldest first (LRU order)."""
        with self._lock:
            return list(self._store)

    def evict(self, key: str) -> bool:
        """Drop one entry (counters untouched); returns whether it was
        present.  The disk-tier oracle uses this to force its next
        lookup through tier 2."""
        with self._lock:
            return self._store.pop(key, None) is not None

    def tamper(self, key: str, mutate) -> bool:
        """Apply ``mutate`` to the stored value under ``key``, in place.

        Returns whether the key was present.  This deliberately bypasses
        the defensive-copy discipline of :meth:`insert`/:meth:`lookup`:
        it exists so ``repro.check.faults`` can corrupt an entry and
        prove the cache-vs-cold differential oracle notices.  Production
        code has no business calling it.
        """
        with self._lock:
            if key not in self._store:
                return False
            mutate(self._store[key])
            return True

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0
            self.bypasses = 0

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
        }

    def format_stats(self) -> str:
        s = self.stats()
        return (
            f"run cache: {s['hits']} hits, {s['misses']} misses, "
            f"{s['bypasses']} bypasses, {s['entries']} entries"
        )


#: Process-wide cache consulted by :func:`repro.mappings.registry.run`.
RUN_CACHE = RunCache(
    enabled=os.environ.get("REPRO_RUN_CACHE", "1") != "0"
)
