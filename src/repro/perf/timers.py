"""Nested wall-time timers and counters for the simulator itself.

The cycle models measure the *modelled* machines; this module measures
the *simulator* — where its own wall-clock time goes — so perf work on
the reproduction has data to stand on.  Usage::

    from repro.perf import timers

    with timers.timer("report"):
        with timers.timer("table3"):
            ...
    timers.count("cache.hit")
    print(timers.render())

Timers nest: a ``timer`` opened inside another accumulates under the
outer one's path ("report/table3" above), so :func:`render` prints an
indented tree with totals, call counts, and self-time.  Accumulation is
keyed per thread-local path but stored globally, so parallel stages
aggregate into one report.  Timers opened on a worker thread (a pool's
thread, not the main thread) attach under a ``worker/<n>`` prefix — one
``n`` per thread, assigned on first use — so a parallel stage's spans
are attributed to their worker instead of silently colliding with the
main thread's open path.

Everything is wall-clock observation only — nothing here may influence
modelled results, and the report CLI prints it to stderr so cached and
uncached runs stay byte-identical on stdout.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

Path = Tuple[str, ...]

_lock = threading.Lock()
_local = threading.local()

#: path -> [total_seconds, calls]
_timings: Dict[Path, list] = {}
#: name -> count
_counters: Dict[str, int] = {}

#: Monotonic worker-thread numbering; never reset, so a long session's
#: prefixes stay unique even across :func:`reset` calls.
_worker_seq = itertools.count()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        if threading.current_thread() is not threading.main_thread():
            # Seed the thread's root with a stable worker prefix so its
            # timings land under "worker/<n>/..." rather than appearing
            # to be top-level (or colliding with main-thread paths).
            stack.append(f"worker/{next(_worker_seq)}")
        _local.stack = stack
    return stack


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate the wall time of the enclosed block under ``name``,
    nested inside any currently open timers of this thread."""
    stack = _stack()
    path: Path = tuple(stack) + (name,)
    stack.append(name)
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        stack.pop()
        with _lock:
            entry = _timings.setdefault(path, [0.0, 0])
            entry[0] += elapsed
            entry[1] += 1


def count(name: str, n: int = 1) -> None:
    """Increment a named counter by ``n``."""
    with _lock:
        _counters[name] = _counters.get(name, 0) + n


def reset() -> None:
    """Clear all timings and counters (the per-thread nesting stacks of
    other threads are untouched; they rebuild on next use)."""
    with _lock:
        _timings.clear()
        _counters.clear()


def snapshot() -> Dict[str, object]:
    """Timings and counters as plain data (for tests and JSON export)."""
    with _lock:
        return {
            "timings": {
                "/".join(path): {"seconds": entry[0], "calls": entry[1]}
                for path, entry in _timings.items()
            },
            "counters": dict(_counters),
        }


def render() -> str:
    """Indented tree of timers (children under parents, sorted by total
    time) followed by the counters."""
    with _lock:
        timings = {path: tuple(entry) for path, entry in _timings.items()}
        counters = dict(_counters)
    lines = ["perf timers (wall time):"]
    if not timings:
        lines.append("  (none recorded)")

    # Include synthesized ancestors of every recorded path, so paths
    # whose prefix was never itself timed (a worker thread's
    # "worker/<n>" root, for instance) still render under their parent
    # instead of being silently dropped by the tree walk.
    nodes = set(timings)
    for path in timings:
        for i in range(1, len(path)):
            nodes.add(path[:i])

    totals: Dict[Path, float] = {}

    def children_of(parent: Path):
        kids = [
            p
            for p in nodes
            if len(p) == len(parent) + 1 and p[: len(parent)] == parent
        ]
        return sorted(kids, key=lambda p: -subtree_total(p))

    def subtree_total(path: Path) -> float:
        if path not in totals:
            if path in timings:
                totals[path] = timings[path][0]
            else:
                totals[path] = sum(
                    subtree_total(c) for c in children_of(path)
                )
        return totals[path]

    def walk(parent: Path, depth: int) -> None:
        for path in children_of(parent):
            if path in timings:
                total, calls = timings[path]
                child_total = sum(
                    subtree_total(c) for c in children_of(path)
                )
                self_time = total - child_total
                lines.append(
                    f"  {'  ' * depth}{path[-1]:<32s} "
                    f"{total:8.3f}s  x{calls:<6d} self {self_time:7.3f}s"
                )
            else:
                lines.append(
                    f"  {'  ' * depth}{path[-1]:<32s} "
                    f"{subtree_total(path):8.3f}s  (aggregated)"
                )
            walk(path, depth + 1)

    walk((), 0)
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<34s} {counters[name]}")
    return "\n".join(lines)
