"""Nested wall-time timers and counters for the simulator itself.

The cycle models measure the *modelled* machines; this module measures
the *simulator* — where its own wall-clock time goes — so perf work on
the reproduction has data to stand on.  Usage::

    from repro.perf import timers

    with timers.timer("report"):
        with timers.timer("table3"):
            ...
    timers.count("cache.hit")
    print(timers.render())

Timers nest: a ``timer`` opened inside another accumulates under the
outer one's path ("report/table3" above), so :func:`render` prints an
indented tree with totals, call counts, and self-time.  Accumulation is
keyed per thread-local path but stored globally, so parallel stages
aggregate into one report.

Everything is wall-clock observation only — nothing here may influence
modelled results, and the report CLI prints it to stderr so cached and
uncached runs stay byte-identical on stdout.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

Path = Tuple[str, ...]

_lock = threading.Lock()
_local = threading.local()

#: path -> [total_seconds, calls]
_timings: Dict[Path, list] = {}
#: name -> count
_counters: Dict[str, int] = {}


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate the wall time of the enclosed block under ``name``,
    nested inside any currently open timers of this thread."""
    stack = _stack()
    path: Path = tuple(stack) + (name,)
    stack.append(name)
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        stack.pop()
        with _lock:
            entry = _timings.setdefault(path, [0.0, 0])
            entry[0] += elapsed
            entry[1] += 1


def count(name: str, n: int = 1) -> None:
    """Increment a named counter by ``n``."""
    with _lock:
        _counters[name] = _counters.get(name, 0) + n


def reset() -> None:
    """Clear all timings and counters (the per-thread nesting stacks of
    other threads are untouched; they rebuild on next use)."""
    with _lock:
        _timings.clear()
        _counters.clear()


def snapshot() -> Dict[str, object]:
    """Timings and counters as plain data (for tests and JSON export)."""
    with _lock:
        return {
            "timings": {
                "/".join(path): {"seconds": entry[0], "calls": entry[1]}
                for path, entry in _timings.items()
            },
            "counters": dict(_counters),
        }


def render() -> str:
    """Indented tree of timers (children under parents, sorted by total
    time) followed by the counters."""
    with _lock:
        timings = {path: tuple(entry) for path, entry in _timings.items()}
        counters = dict(_counters)
    lines = ["perf timers (wall time):"]
    if not timings:
        lines.append("  (none recorded)")

    def children_of(parent: Path):
        kids = [p for p in timings if len(p) == len(parent) + 1 and p[: len(parent)] == parent]
        return sorted(kids, key=lambda p: -timings[p][0])

    def walk(parent: Path, depth: int) -> None:
        for path in children_of(parent):
            total, calls = timings[path]
            child_total = sum(timings[c][0] for c in children_of(path))
            self_time = total - child_total
            lines.append(
                f"  {'  ' * depth}{path[-1]:<32s} "
                f"{total:8.3f}s  x{calls:<6d} self {self_time:7.3f}s"
            )
            walk(path, depth + 1)

    walk((), 0)
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<34s} {counters[name]}")
    return "\n".join(lines)
