"""Packed disk-cache index: one manifest, sharded payload segments.

The original tier 2 (:mod:`repro.perf.diskcache`) stores one file per
key; a warm ``repro report`` therefore pays one ``open`` + full-file
``sha256`` per probe.  This module replaces the *layout* — not the
semantics — with a packed store:

* ``<root>/<stamp>/index.manifest`` — an append-only JSON-lines
  manifest.  Line 1 is a header carrying the format name and a
  *generation* token; every other line is a record
  ``{"k": key, "s": segment, "o": offset, "n": length, "d": sha256,
  "t": stored_at}`` or a tombstone ``{"k": key, "x": 1}``.  Last record
  for a key wins.
* ``<root>/<stamp>/segments/seg-NNNNN.bin`` — payload segments holding
  the raw pickled runs back to back.  A segment rolls over at
  ``REPRO_INDEX_SEGMENT_MB`` (default 64).

A warm process loads the manifest **once** (a single sequential read),
then answers every probe from the in-memory map with one ``pread`` per
payload; :meth:`get_many` batches a whole sweep's probes, grouping by
segment.  Appends — payload bytes, then the manifest line — happen under
the same inter-process ``flock`` the legacy store used, so concurrent
writers serialise and readers can incrementally consume the manifest
tail from their last-read byte offset.

Integrity semantics are preserved from the legacy tier, entry for
entry: payload digests are verified before anything is unpickled, a
corrupt record is quarantined (payload bytes moved to
``<root>/quarantine/`` with a structured incident JSON) and tombstoned
— counted, never served, never wedging the key; a torn manifest tail
(writer killed mid-append) is quarantined and truncated by the next
locked writer, mirroring the flight-recorder ledger's recovery; a
transient read error is retried once before degrading to a miss.
Pruning rewrites manifest + segments compacted under the lock and bumps
the header generation so other processes reload.

The singleton :data:`repro.perf.diskcache.DISK_CACHE` is an instance of
:class:`PackedDiskCache`; the legacy :class:`~repro.perf.diskcache.
DiskCache` class remains for migration (``repro cache migrate``) and
for its format-coupled tests.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import threading
import time
from collections import deque
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.perf.diskcache import DiskCache, _chaos_active, _default_root, _FlockGuard
from repro.trace.tracer import active_tracer

#: Manifest header format tag (line 1 of every manifest).
INDEX_FORMAT = "repro-index-v1"

#: Default payload-segment rollover size, overridable per operation via
#: ``REPRO_INDEX_SEGMENT_MB``.
DEFAULT_SEGMENT_MB = 64

#: Probe-latency reservoir size (per process, newest samples win).
_LATENCY_SAMPLES = 512


def _segment_bytes() -> int:
    try:
        mb = float(os.environ.get("REPRO_INDEX_SEGMENT_MB", ""))
    except ValueError:
        mb = 0.0
    if mb <= 0:
        mb = DEFAULT_SEGMENT_MB
    return int(mb * 1024 * 1024)


class _Record:
    """One live manifest record (kept tiny — a warm store holds many)."""

    __slots__ = ("segment", "offset", "length", "digest", "stored_at")

    def __init__(
        self, segment: int, offset: int, length: int, digest: str,
        stored_at: float,
    ) -> None:
        self.segment = segment
        self.offset = offset
        self.length = length
        self.digest = digest
        self.stored_at = stored_at


class _View:
    """In-memory image of one ``(root, stamp)`` store."""

    def __init__(self, key: Tuple[str, str]) -> None:
        self.key = key
        self.records: Dict[str, _Record] = {}
        self.manifest_pos = 0
        self.generation: Optional[str] = None
        self.current_segment = 0
        self.atimes: Dict[str, float] = {}
        self.verified: set = set()
        self.seg_stat: Dict[int, Tuple[int, int]] = {}
        self.fds: Dict[int, int] = {}

    def close(self) -> None:
        for fd in self.fds.values():
            try:
                os.close(fd)
            except OSError:
                pass
        self.fds.clear()


class PackedDiskCache:
    """Tier 2 with a packed manifest+segments layout.

    API-compatible with the legacy :class:`~repro.perf.diskcache.
    DiskCache` (same counters, same quarantine/incident shape, same
    ``format_stats`` line, same advisory lock), plus the batched
    :meth:`get_many` / :meth:`put_many` the planner uses on the warm
    path.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        max_entries: int = 4096,
        max_bytes: int = 512 * 1024 * 1024,
        prune_interval: int = 128,
        respect_env: bool = True,
    ) -> None:
        self._directory = Path(directory) if directory is not None else None
        self._respect_env = bool(respect_env)
        self._forced_off = False
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.prune_interval = int(prune_interval)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.corrupt = 0
        self.bypasses = 0
        self.quarantined = 0
        self.io_retries = 0
        self.refreshes = 0
        self.torn_records = 0
        self.compactions = 0
        self._probe_us: deque = deque(maxlen=_LATENCY_SAMPLES)
        self._view: Optional[_View] = None

    # -- configuration -------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether lookups/inserts touch the disk at all (re-reads
        ``REPRO_DISK_CACHE`` on each access, like the legacy tier)."""
        if self._forced_off:
            return False
        if not self._respect_env:
            return True
        return os.environ.get("REPRO_DISK_CACHE", "1") != "0"

    def enable(self) -> None:
        self._forced_off = False

    def disable(self) -> None:
        self._forced_off = True

    @contextlib.contextmanager
    def disabled(self) -> Iterator[None]:
        """Force the tier off for a scope, restoring the prior state."""
        prev = self._forced_off
        self._forced_off = True
        try:
            yield
        finally:
            self._forced_off = prev

    def root(self) -> Path:
        return self._directory if self._directory is not None else _default_root()

    def stamp_dir(self) -> Path:
        from repro.perf.cache import model_version_stamp

        return self.root() / model_version_stamp()

    def quarantine_dir(self) -> Path:
        return self.root() / "quarantine"

    def _manifest_path(self, stamp_dir: Optional[Path] = None) -> Path:
        return (stamp_dir or self.stamp_dir()) / "index.manifest"

    def _segment_path(self, index: int, stamp_dir: Optional[Path] = None) -> Path:
        base = stamp_dir or self.stamp_dir()
        return base / "segments" / f"seg-{index:05d}.bin"

    def _interprocess_lock(self):
        """The same advisory lock the legacy tier used (prune *and*
        appends serialise on it; degrades to a no-op without fcntl)."""
        return _FlockGuard(self.root() / ".lock")

    # -- counters ------------------------------------------------------

    def _count(self, attr: str, trace_name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, attr, getattr(self, attr) + n)
        tracer = active_tracer()
        if tracer is not None:
            tracer.count(trace_name, n)

    def note_bypass(self) -> None:
        self._count("bypasses", "perf.diskcache.bypass")

    # -- in-memory view maintenance ------------------------------------

    def _current_view(self) -> _View:
        """The view for the current ``(root, stamp)``, synced to the
        manifest tail.  Detects root changes (tests redirect the env
        var), manifest rewrites (prune in another process, via the
        header generation), and a fork (stale inherited state)."""
        if self._pid != os.getpid():
            # Forked child: inherited fds/views are the parent's.
            self._view = None
            self._pid = os.getpid()
        key = (str(self.root()), str(self.stamp_dir().name))
        view = self._view
        if view is None or view.key != key:
            if view is not None:
                view.close()
            view = _View(key)
            self._view = view
        self._sync(view)
        return view

    def _sync(self, view: _View) -> None:
        """Consume manifest lines appended since the last sync; reload
        from scratch when the manifest was rewritten or truncated."""
        manifest = self._manifest_path()
        try:
            size = manifest.stat().st_size
        except OSError:
            if view.manifest_pos or view.records:
                view.close()
                self._reset_view(view)
            return
        try:
            with open(manifest, "rb") as fh:
                header = fh.readline()
                generation = self._parse_generation(header)
                if (
                    generation != view.generation
                    or size < view.manifest_pos
                ):
                    self._reset_view(view)
                    view.generation = generation
                    view.manifest_pos = fh.tell()
                elif size == view.manifest_pos:
                    return
                fh.seek(view.manifest_pos)
                tail = fh.read()
        except OSError:
            return
        with self._lock:
            self.refreshes += 1
        pos = 0
        while True:
            newline = tail.find(b"\n", pos)
            if newline == -1:
                break  # torn tail: not yet durable, re-read next sync
            line = tail[pos:newline]
            if line:
                try:
                    self._apply_line(view, json.loads(line))
                except (ValueError, KeyError, TypeError):
                    with self._lock:
                        self.torn_records += 1
            pos = newline + 1
        view.manifest_pos += pos

    @staticmethod
    def _parse_generation(header: bytes) -> Optional[str]:
        try:
            doc = json.loads(header)
            if doc.get("format") != INDEX_FORMAT:
                return None
            return str(doc.get("gen"))
        except (ValueError, TypeError):
            return None

    def _reset_view(self, view: _View) -> None:
        view.close()
        view.records.clear()
        view.manifest_pos = 0
        view.generation = None
        view.current_segment = 0
        view.seg_stat.clear()
        view.verified.clear()

    def _apply_line(self, view: _View, doc: Dict[str, Any]) -> None:
        key = doc["k"]
        if doc.get("x"):
            view.records.pop(key, None)
            view.verified.discard(key)
            return
        record = _Record(
            int(doc["s"]), int(doc["o"]), int(doc["n"]),
            str(doc["d"]), float(doc.get("t", 0.0)),
        )
        view.records[key] = record
        view.verified.discard(key)
        if record.segment >= view.current_segment:
            view.current_segment = record.segment

    def _record(self, key: str) -> Optional[_Record]:
        view = self._current_view()
        return view.records.get(key)

    # -- low-level I/O -------------------------------------------------

    def _segment_fd(self, view: _View, index: int) -> Optional[int]:
        fd = view.fds.get(index)
        if fd is None:
            try:
                fd = os.open(self._segment_path(index), os.O_RDONLY)
            except OSError:
                return None
            view.fds[index] = fd
        return fd

    def _read_payload(
        self, view: _View, record: _Record
    ) -> Tuple[Optional[bytes], str]:
        """``(payload, failure-reason)`` for one record; retries one
        transient I/O error like the legacy ``_read_entry``."""
        path = self._segment_path(record.segment)
        for attempt in (0, 1):
            try:
                if _chaos_active():
                    from repro.resilience import chaos

                    chaos.on_disk_read(path)
                fd = view.fds.get(record.segment)
                if fd is None:
                    fd = os.open(path, os.O_RDONLY)
                    view.fds[record.segment] = fd
                try:
                    stat = os.fstat(fd)
                    view.seg_stat[record.segment] = (
                        stat.st_size, stat.st_mtime_ns
                    )
                except OSError:
                    pass
                blob = os.pread(fd, record.length, record.offset)
            except FileNotFoundError:
                return None, "segment file missing"
            except OSError:
                from repro.resilience.stats import RESILIENCE

                RESILIENCE.note("io_errors")
                if attempt == 0:
                    with self._lock:
                        self.io_retries += 1
                    RESILIENCE.note("io_retries")
                    # The fd (if any) may be poisoned; reopen next try.
                    fd = view.fds.pop(record.segment, None)
                    if fd is not None:
                        try:
                            os.close(fd)
                        except OSError:
                            pass
                continue
            if len(blob) < record.length:
                return None, (
                    f"segment truncated: wanted {record.length} bytes at "
                    f"offset {record.offset}, got {len(blob)}"
                )
            return blob, ""
        return None, "io-error"

    def _append(
        self,
        view: _View,
        entries: Sequence[Tuple[str, bytes, str]],
    ) -> int:
        """Append ``(key, payload, digest)`` entries (payloads first,
        then their manifest lines); caller holds the flock.  Returns the
        number of entries published."""
        stamp_dir = self.stamp_dir()
        manifest = self._manifest_path(stamp_dir)
        limit = _segment_bytes()
        written = 0
        lines: List[bytes] = []
        try:
            stamp_dir.mkdir(parents=True, exist_ok=True)
            self._segment_path(0, stamp_dir).parent.mkdir(
                parents=True, exist_ok=True
            )
            if not manifest.exists():
                self._write_header(manifest)
                view.generation = None  # forces reload on next sync
            self._recover_torn_tail(manifest)
            seg_index = view.current_segment
            seg_path = self._segment_path(seg_index, stamp_dir)
            try:
                seg_size = seg_path.stat().st_size
            except OSError:
                seg_size = 0
            last_path = seg_path
            seg = open(seg_path, "ab")
            try:
                for key, payload, digest in entries:
                    if seg_size and seg_size + len(payload) > limit:
                        seg.close()
                        seg_index += 1
                        seg_path = self._segment_path(seg_index, stamp_dir)
                        seg = open(seg_path, "ab")
                        seg_size = seg.tell()
                        last_path = seg_path
                    offset = seg_size
                    seg.write(payload)
                    seg_size += len(payload)
                    stored_at = time.time()
                    lines.append(
                        json.dumps(
                            {
                                "k": key, "s": seg_index, "o": offset,
                                "n": len(payload), "d": digest,
                                "t": stored_at,
                            },
                            sort_keys=True,
                        ).encode("ascii")
                        + b"\n"
                    )
                    record = _Record(
                        seg_index, offset, len(payload), digest, stored_at
                    )
                    view.records[key] = record
                    view.verified.discard(key)
                    view.atimes[key] = stored_at
                    written += 1
            finally:
                seg.close()
            view.current_segment = seg_index
            with open(manifest, "ab") as fh:
                fh.write(b"".join(lines))
                view.manifest_pos = fh.tell()
        except OSError:
            return 0
        if written and _chaos_active():
            from repro.resilience import chaos

            chaos.on_disk_insert(last_path)
            # The hook may have flipped the segment tail; nothing to do
            # here — the digest check catches it on the next read.
            view.verified.clear()
        return written

    def _write_header(self, manifest: Path) -> None:
        header = {
            "format": INDEX_FORMAT,
            "gen": f"{os.getpid()}-{time.time_ns()}",
        }
        with open(manifest, "xb") as fh:
            fh.write(json.dumps(header, sort_keys=True).encode("ascii") + b"\n")

    def _recover_torn_tail(self, manifest: Path) -> None:
        """Truncate a partial final manifest line (writer killed
        mid-append), preserving the torn bytes as quarantine evidence —
        the same recovery the flight-recorder ledger applies.  Caller
        holds the flock."""
        try:
            with open(manifest, "r+b") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size == 0:
                    return
                fh.seek(size - 1)
                if fh.read(1) == b"\n":
                    return
                fh.seek(0)
                data = fh.read()
                cut = data.rfind(b"\n") + 1
                torn = data[cut:]
                fh.truncate(cut)
        except OSError:
            return
        with self._lock:
            self.torn_records += 1
        try:
            qdir = self.quarantine_dir()
            qdir.mkdir(parents=True, exist_ok=True)
            stamp = self.stamp_dir().name
            evidence = qdir / f"manifest-torn-{stamp}-{cut}.bin"
            evidence.write_bytes(torn)
            evidence.with_suffix(".incident.json").write_text(
                json.dumps(
                    {
                        "key": f"manifest-torn-{stamp}-{cut}",
                        "reason": "torn manifest tail (partial record)",
                        "source": str(manifest),
                        "action": "quarantined",
                        "pid": os.getpid(),
                        "detected_at": time.strftime(
                            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
                        ),
                        "size": len(torn),
                        "quarantined_to": str(evidence),
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
        except OSError:
            pass
        from repro.resilience.stats import RESILIENCE

        RESILIENCE.note("quarantined")
        with self._lock:
            self.quarantined += 1

    # -- quarantine ----------------------------------------------------

    def _quarantine(
        self, key: str, record: _Record, blob: Optional[bytes], reason: str
    ) -> None:
        """Preserve a damaged record's bytes, tombstone the key, count.

        Mirrors the legacy quarantine: evidence is moved out (here,
        copied — the segment holds other live records), an incident JSON
        is written beside it, and the key heals on the next insert.
        Never raises.
        """
        incident: Dict[str, Any] = {
            "key": key,
            "reason": reason,
            "source": (
                f"{self._segment_path(record.segment)}"
                f"@{record.offset}+{record.length}"
            ),
            "action": "quarantined",
            "pid": os.getpid(),
            "detected_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime()
            ),
            "size": record.length,
        }
        try:
            qdir = self.quarantine_dir()
            qdir.mkdir(parents=True, exist_ok=True)
            dest = qdir / f"{key}.run"
            dest.write_bytes(blob if blob is not None else b"")
            incident["quarantined_to"] = str(dest)
            dest.with_suffix(".incident.json").write_text(
                json.dumps(incident, indent=2, sort_keys=True) + "\n"
            )
        except OSError:
            incident["action"] = "dropped"
        self.evict(key)
        with self._lock:
            self.quarantined += 1
        from repro.resilience.stats import RESILIENCE

        RESILIENCE.note("quarantined")
        tracer = active_tracer()
        if tracer is not None:
            tracer.count("perf.diskcache.quarantined")

    def incidents(self) -> List[Dict[str, Any]]:
        """Every parseable incident record in the quarantine, sorted."""
        out: List[Dict[str, Any]] = []
        qdir = self.quarantine_dir()
        if not qdir.is_dir():
            return out
        for record in sorted(qdir.glob("*.incident.json")):
            try:
                out.append(json.loads(record.read_text()))
            except (OSError, ValueError):
                continue
        return out

    # -- store operations ----------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether a live record exists (no counters, no payload I/O)."""
        return self.enabled and self._record(key) is not None

    def _resync_stale(self, view: _View, key: str) -> Optional[_Record]:
        """If the manifest generation moved under us (a concurrent
        compaction replaced the segments), reload and return the key's
        fresh record — a failed read against a stale view is a race,
        not corruption.  ``None`` when the view was already current or
        the key is gone."""
        try:
            with open(self._manifest_path(), "rb") as fh:
                generation = self._parse_generation(fh.readline())
        except OSError:
            return None
        if generation == view.generation:
            return None
        view.close()
        view.seg_stat.clear()
        self._sync(view)
        return view.records.get(key)

    def _decode_record(
        self, view: _View, key: str, record: _Record, retried: bool = False
    ) -> Optional[Any]:
        """Verified, unpickled payload of one record; quarantines and
        returns ``None`` on corruption (counted corrupt + miss), or on
        an unhealable read error (counted as a plain miss)."""
        blob, failure = self._read_payload(view, record)
        if blob is None or hashlib.sha256(blob).hexdigest() != record.digest:
            if not retried:
                fresh = self._resync_stale(view, key)
                if fresh is not None:
                    return self._decode_record(
                        view, key, fresh, retried=True
                    )
            if blob is None and "truncated" not in failure and (
                "missing" not in failure
            ):
                # Transient I/O failure: a plain miss, not corruption.
                self._count("misses", "perf.diskcache.miss")
                return None
            reason = failure if blob is None else "payload digest mismatch"
            self._count("corrupt", "perf.diskcache.corrupt")
            self._count("misses", "perf.diskcache.miss")
            self._quarantine(key, record, blob, reason)
            return None
        try:
            value = pickle.loads(blob)
        except Exception as exc:  # pickle raises many concrete types
            self._count("corrupt", "perf.diskcache.corrupt")
            self._count("misses", "perf.diskcache.miss")
            self._quarantine(key, record, blob, f"unpicklable ({exc})")
            return None
        view.verified.add(key)
        view.atimes[key] = time.time()
        return value

    def lookup(self, key: str) -> Optional[Any]:
        """The stored run, digest-verified, or ``None``; never raises on
        a damaged store (corruption quarantines and misses)."""
        if not self.enabled:
            self.note_bypass()
            return None
        t0 = time.perf_counter()
        view = self._current_view()
        record = view.records.get(key)
        if record is None:
            self._count("misses", "perf.diskcache.miss")
            self._note_probe(time.perf_counter() - t0)
            return None
        value = self._decode_record(view, key, record)
        if value is not None:
            self._count("hits", "perf.diskcache.hit")
        self._note_probe(time.perf_counter() - t0)
        return value

    def get_many(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Batched lookups: one manifest sync, payload reads grouped by
        segment in offset order.  Returns ``{key: value}`` for the keys
        served; misses and corruption count exactly as per-key lookups.
        """
        if not keys:
            return {}
        if not self.enabled:
            for _ in keys:
                self.note_bypass()
            return {}
        t0 = time.perf_counter()
        view = self._current_view()
        found: List[Tuple[str, _Record]] = []
        for key in keys:
            record = view.records.get(key)
            if record is None:
                self._count("misses", "perf.diskcache.miss")
            else:
                found.append((key, record))
        out: Dict[str, Any] = {}
        for key, record in sorted(
            found, key=lambda kr: (kr[1].segment, kr[1].offset)
        ):
            value = self._decode_record(view, key, record)
            if value is not None:
                self._count("hits", "perf.diskcache.hit")
                out[key] = value
        elapsed = time.perf_counter() - t0
        for _ in keys:
            self._note_probe(elapsed / len(keys))
        return out

    def insert(self, key: str, value: Any) -> bool:
        """Append ``value`` under ``key``; returns whether it published.

        An unpicklable value or an unwritable store degrades to a no-op
        — the disk tier is an accelerator, never a correctness
        dependency.
        """
        return self.put_many([(key, value)]) == 1

    def put_many(self, items: Sequence[Tuple[str, Any]]) -> int:
        """Append many entries under one lock acquisition; returns how
        many published."""
        if not items:
            return 0
        if not self.enabled:
            for _ in items:
                self.note_bypass()
            return 0
        entries: List[Tuple[str, bytes, str]] = []
        for key, value in items:
            try:
                payload = pickle.dumps(
                    value, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                continue
            entries.append(
                (key, payload, hashlib.sha256(payload).hexdigest())
            )
        if not entries:
            return 0
        try:
            with self._interprocess_lock():
                view = self._current_view()
                written = self._append(view, entries)
        except OSError:
            return 0
        if written:
            self._count("writes", "perf.diskcache.write", written)
            if self.prune_interval and (
                self.writes % self.prune_interval
            ) < written:
                self.prune()
        return written

    def evict(self, key: str) -> bool:
        """Tombstone one entry; returns whether a live record existed."""
        view = self._current_view()
        if key not in view.records:
            return False
        line = json.dumps({"k": key, "x": 1}).encode("ascii") + b"\n"
        try:
            with self._interprocess_lock():
                self._sync(view)
                manifest = self._manifest_path()
                if not manifest.exists():
                    view.records.pop(key, None)
                    return True
                self._recover_torn_tail(manifest)
                with open(manifest, "ab") as fh:
                    fh.write(line)
                    view.manifest_pos = fh.tell()
        except OSError:
            pass
        view.records.pop(key, None)
        view.verified.discard(key)
        view.atimes.pop(key, None)
        return True

    def keys(self) -> List[str]:
        """Live keys of the current stamp, least recently used first."""
        view = self._current_view()
        return sorted(
            view.records,
            key=lambda k: max(
                view.atimes.get(k, 0.0), view.records[k].stored_at
            ),
        )

    def __len__(self) -> int:
        return len(self._current_view().records)

    def total_bytes(self) -> int:
        view = self._current_view()
        return sum(r.length for r in view.records.values())

    # -- prune / clear -------------------------------------------------

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict least-recently-used entries until within the caps and
        compact manifest + segments; returns the number evicted.

        Runs entirely under the inter-process lock: survivors are
        rewritten into fresh segments, the manifest is rewritten with a
        new generation token, and other processes reload on their next
        sync.  Recency is the in-process access time where known,
        falling back to each record's stored-at time.
        """
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        removed = 0
        with self._interprocess_lock():
            view = self._current_view()
            ordered = self.keys()
            total = sum(r.length for r in view.records.values())
            doomed: List[str] = []
            while ordered and (
                len(ordered) > max_entries or total > max_bytes
            ):
                key = ordered.pop(0)
                total -= view.records[key].length
                doomed.append(key)
            if not doomed:
                return 0
            removed = len(doomed)
            survivors = [
                (key, view.records[key]) for key in ordered
            ]
            self._compact(view, survivors, doomed)
        if removed:
            with self._lock:
                self.evictions += removed
            tracer = active_tracer()
            if tracer is not None:
                tracer.count("perf.diskcache.evict", removed)
        return removed

    def _compact(
        self,
        view: _View,
        survivors: List[Tuple[str, _Record]],
        doomed: List[str],
    ) -> None:
        """Rewrite manifest + segments holding only ``survivors``;
        caller holds the flock.  A failure leaves the old store intact
        (tombstones are appended instead as a fallback)."""
        stamp_dir = self.stamp_dir()
        limit = _segment_bytes()
        generation = f"{os.getpid()}-{time.time_ns()}"
        lines = [
            json.dumps(
                {"format": INDEX_FORMAT, "gen": generation}, sort_keys=True
            ).encode("ascii")
            + b"\n"
        ]
        try:
            seg_dir = self._segment_path(0, stamp_dir).parent
            seg_dir.mkdir(parents=True, exist_ok=True)
            seg_index = 0
            seg_size = 0
            tmp_segments: List[Tuple[Path, Path]] = []
            seg_tmp = seg_dir / f".compact-{os.getpid()}-{seg_index:05d}"
            seg = open(seg_tmp, "wb")
            tmp_segments.append(
                (seg_tmp, self._segment_path(seg_index, stamp_dir))
            )
            new_records: Dict[str, _Record] = {}
            for key, record in survivors:
                blob, _failure = self._read_payload(view, record)
                if blob is None or (
                    hashlib.sha256(blob).hexdigest() != record.digest
                ):
                    continue  # damaged survivor: drop, key recomputes
                if seg_size and seg_size + len(blob) > limit:
                    seg.close()
                    seg_index += 1
                    seg_size = 0
                    seg_tmp = (
                        seg_dir / f".compact-{os.getpid()}-{seg_index:05d}"
                    )
                    seg = open(seg_tmp, "wb")
                    tmp_segments.append(
                        (seg_tmp, self._segment_path(seg_index, stamp_dir))
                    )
                offset = seg_size
                seg.write(blob)
                seg_size += len(blob)
                lines.append(
                    json.dumps(
                        {
                            "k": key, "s": seg_index, "o": offset,
                            "n": len(blob), "d": record.digest,
                            "t": max(
                                view.atimes.get(key, 0.0), record.stored_at
                            ),
                        },
                        sort_keys=True,
                    ).encode("ascii")
                    + b"\n"
                )
                new_records[key] = _Record(
                    seg_index, offset, len(blob), record.digest,
                    record.stored_at,
                )
            seg.close()
            manifest = self._manifest_path(stamp_dir)
            manifest_tmp = manifest.with_name(
                f".compact-manifest-{os.getpid()}"
            )
            manifest_tmp.write_bytes(b"".join(lines))
            # Publish: segments first (readers of the *old* manifest keep
            # their old fds — unlinked inodes stay readable), manifest
            # last with its fresh generation.
            for tmp, final in tmp_segments:
                os.replace(tmp, final)
            stale = seg_index + 1
            while True:
                leftover = self._segment_path(stale, stamp_dir)
                if not leftover.exists():
                    break
                try:
                    leftover.unlink()
                except OSError:
                    pass
                stale += 1
            os.replace(manifest_tmp, manifest)
        except OSError:
            # Fall back to tombstoning the doomed keys in place.
            try:
                with open(self._manifest_path(stamp_dir), "ab") as fh:
                    for key in doomed:
                        fh.write(
                            json.dumps({"k": key, "x": 1}).encode("ascii")
                            + b"\n"
                        )
            except OSError:
                pass
            for key in doomed:
                view.records.pop(key, None)
                view.atimes.pop(key, None)
                view.verified.discard(key)
            return
        with self._lock:
            self.compactions += 1
        view.close()
        view.records = new_records
        view.generation = generation
        view.current_segment = seg_index
        view.manifest_pos = sum(len(line) for line in lines)
        view.verified.clear()
        view.seg_stat.clear()
        for key in doomed:
            view.atimes.pop(key, None)

    def clear(self) -> int:
        """Remove every entry (all stamps) and reset the counters;
        returns the number of live records removed."""
        import shutil

        root = self.root()
        removed = 0
        if root.is_dir():
            for manifest in root.glob("*/index.manifest"):
                removed += len(self._manifest_census(manifest)[0])
            # Legacy file-per-key entries count too (pre-migration).
            removed += sum(1 for _ in root.glob("*/*/*.run"))
            shutil.rmtree(root, ignore_errors=True)
        if self._view is not None:
            self._view.close()
            self._view = None
        with self._lock:
            self.hits = self.misses = self.writes = 0
            self.evictions = self.corrupt = self.bypasses = 0
            self.quarantined = self.io_retries = 0
            self.refreshes = self.torn_records = self.compactions = 0
            self._probe_us.clear()
        return removed

    # -- integrity and fault hooks -------------------------------------

    def verify(self) -> List[str]:
        """Digest-verify the current stamp's records (hash only — no
        unpickling); returns the keys that failed, each counted under
        ``corrupt``.

        Keys whose bytes were already hash-verified by this process are
        skipped *unless* their segment changed on disk since we read it
        (size or mtime drift) — so an external writer's corruption is
        still caught, while a warm validation pass costs one ``stat``
        per segment instead of re-hashing the whole store.
        """
        view = self._current_view()
        for index, (size, mtime_ns) in list(view.seg_stat.items()):
            try:
                stat = self._segment_path(index).stat()
            except OSError:
                view.verified.clear()
                break
            if (stat.st_size, stat.st_mtime_ns) != (size, mtime_ns):
                view.verified.clear()
                view.seg_stat.pop(index, None)
        bad: List[str] = []
        for key, record in sorted(view.records.items()):
            if key in view.verified:
                continue
            blob, _failure = self._read_payload(view, record)
            if (
                blob is None
                or hashlib.sha256(blob).hexdigest() != record.digest
            ):
                self._count("corrupt", "perf.diskcache.corrupt")
                bad.append(key)
            else:
                view.verified.add(key)
        return bad

    def tamper(self, key: str, mutate: Callable[[Any], None]) -> bool:
        """Re-append the entry with ``mutate`` applied and a *valid*
        digest — the stale-but-self-consistent corruption only a
        differential oracle can catch.  For :mod:`repro.check.faults`;
        returns whether the key was present."""
        view = self._current_view()
        record = view.records.get(key)
        if record is None:
            return False
        blob, _failure = self._read_payload(view, record)
        if blob is None:
            return False
        try:
            value = pickle.loads(blob)
        except Exception:
            return False
        mutate(value)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        with self._interprocess_lock():
            return self._append(view, [(key, payload, digest)]) == 1

    def corrupt_bytes(self, key: str, offset: int = -1) -> bool:
        """Flip one payload byte in place (digest left stale), modelling
        media corruption.  For fault injection only; returns whether the
        key was present."""
        view = self._current_view()
        record = view.records.get(key)
        if record is None:
            return False
        position = record.offset + (offset % record.length)
        path = self._segment_path(record.segment)
        try:
            fd = os.open(path, os.O_RDWR)
            try:
                current = os.pread(fd, 1, position)
                if len(current) != 1:
                    return False
                os.pwrite(fd, bytes([current[0] ^ 0xFF]), position)
            finally:
                os.close(fd)
        except OSError:
            return False
        view.verified.discard(key)
        return True

    def truncate_entry(self, key: str) -> bool:
        """Tear the entry mid-payload — the torn tail a crash mid-write
        leaves.  The record is re-appended at the current segment tail,
        then the segment is truncated halfway through it, so only this
        key is damaged.  For fault injection only."""
        view = self._current_view()
        record = view.records.get(key)
        if record is None:
            return False
        blob, _failure = self._read_payload(view, record)
        if blob is None:
            blob = b"\x00" * record.length
        digest = hashlib.sha256(blob).hexdigest()
        with self._interprocess_lock():
            if self._append(view, [(key, blob, digest)]) != 1:
                return False
            fresh = view.records[key]
            path = self._segment_path(fresh.segment)
            try:
                with open(path, "r+b") as fh:
                    fh.truncate(fresh.offset + fresh.length // 2)
            except OSError:
                return False
        view.verified.discard(key)
        view.seg_stat.pop(fresh.segment, None)
        return True

    # -- migration -----------------------------------------------------

    def migrate_legacy(self) -> Dict[str, int]:
        """Pack legacy file-per-key entries (``<stamp>/<xx>/<key>.run``)
        under this root into the index, digest-verified, removing each
        migrated file.  A file that fails verification is quarantined by
        the legacy store's own rules.  Returns
        ``{"migrated": n, "corrupt": n, "stamps": n}``.
        """
        root = self.root()
        migrated = corrupt = 0
        stamps = set()
        if not root.is_dir():
            return {"migrated": 0, "corrupt": 0, "stamps": 0}
        legacy = DiskCache(root, respect_env=False)
        for path in sorted(root.glob("*/*/*.run")):
            stamp = path.parent.parent.name
            if stamp == "quarantine":
                continue
            key = path.stem
            try:
                blob = path.read_bytes()
                value = DiskCache.decode(blob)
            except (OSError, ValueError) as exc:
                corrupt += 1
                legacy._quarantine(key, path, f"migrate: {exc}")
                continue
            stamps.add(stamp)
            # Entries live under their own stamp dir; only the current
            # stamp's entries are reachable by lookups, but pack every
            # stamp faithfully.
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest()
            stamp_dir = root / stamp
            with self._interprocess_lock():
                if stamp_dir == self.stamp_dir():
                    view = self._current_view()
                    ok = self._append(view, [(key, payload, digest)]) == 1
                else:
                    ok = self._append_foreign(
                        stamp_dir, [(key, payload, digest)]
                    )
            if not ok:
                continue
            migrated += 1
            try:
                path.unlink()
                if not any(path.parent.iterdir()):
                    path.parent.rmdir()
            except OSError:
                pass
        return {
            "migrated": migrated, "corrupt": corrupt, "stamps": len(stamps)
        }

    def _append_foreign(
        self, stamp_dir: Path, entries: Sequence[Tuple[str, bytes, str]]
    ) -> bool:
        """Append records into a non-current stamp's manifest (migration
        of orphaned stamps); caller holds the flock."""
        manifest = self._manifest_path(stamp_dir)
        try:
            stamp_dir.mkdir(parents=True, exist_ok=True)
            self._segment_path(0, stamp_dir).parent.mkdir(
                parents=True, exist_ok=True
            )
            if not manifest.exists():
                self._write_header(manifest)
            seg_path = self._segment_path(0, stamp_dir)
            with open(seg_path, "ab") as seg:
                lines = []
                for key, payload, digest in entries:
                    offset = seg.tell()
                    seg.write(payload)
                    lines.append(
                        json.dumps(
                            {
                                "k": key, "s": 0, "o": offset,
                                "n": len(payload), "d": digest,
                                "t": time.time(),
                            },
                            sort_keys=True,
                        ).encode("ascii")
                        + b"\n"
                    )
            with open(manifest, "ab") as fh:
                fh.write(b"".join(lines))
        except OSError:
            return False
        return True

    # -- reporting -----------------------------------------------------

    def _note_probe(self, seconds: float) -> None:
        with self._lock:
            self._probe_us.append(seconds * 1e6)

    def probe_percentiles(self) -> Dict[str, float]:
        """p50/p90/p99 of recent probe latencies, microseconds."""
        with self._lock:
            samples = sorted(self._probe_us)
        if not samples:
            return {"p50_us": 0.0, "p90_us": 0.0, "p99_us": 0.0}

        def pct(p: float) -> float:
            rank = min(len(samples) - 1, int(p * (len(samples) - 1) + 0.5))
            return samples[rank]

        return {
            "p50_us": pct(0.50), "p90_us": pct(0.90), "p99_us": pct(0.99)
        }

    @staticmethod
    def _manifest_census(
        manifest: Path,
    ) -> Tuple[Dict[str, int], int]:
        """``({key: length}, segment_count)`` of one manifest, parsed
        without touching the model-version stamp (so ``repro cache
        stats`` never imports the modelling stack)."""
        live: Dict[str, int] = {}
        segments: set = set()
        try:
            with open(manifest, "rb") as fh:
                fh.readline()  # header
                for line in fh:
                    if not line.endswith(b"\n"):
                        break
                    try:
                        doc = json.loads(line)
                        if doc.get("x"):
                            live.pop(doc["k"], None)
                        else:
                            live[doc["k"]] = int(doc["n"])
                            segments.add(int(doc["s"]))
                    except (ValueError, KeyError, TypeError):
                        continue
        except OSError:
            return {}, 0
        return live, len(segments)

    def _census(self) -> Tuple[int, int, int, int]:
        """(entries, bytes, segments, manifest_bytes) across all stamps
        under the root — stamp-free, so the CLI fast path stays free of
        numpy imports."""
        root = self.root()
        entries = total = segments = manifest_bytes = 0
        if not root.is_dir():
            return 0, 0, 0, 0
        for manifest in sorted(root.glob("*/index.manifest")):
            live, seg_count = self._manifest_census(manifest)
            entries += len(live)
            total += sum(live.values())
            segments += seg_count
            try:
                manifest_bytes += manifest.stat().st_size
            except OSError:
                pass
        return entries, total, segments, manifest_bytes

    def stats(self) -> Dict[str, int]:
        entries, total, _segments, _manifest_bytes = self._census()
        return {
            "entries": entries,
            "bytes": total,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "io_retries": self.io_retries,
            "bypasses": self.bypasses,
            "enabled": int(self.enabled),
        }

    def index_stats(self) -> Dict[str, float]:
        """The ``perf.index`` telemetry source: packed-layout health."""
        entries, total, segments, manifest_bytes = self._census()
        out: Dict[str, float] = {
            "entries": entries,
            "bytes": total,
            "segments": segments,
            "manifest_bytes": manifest_bytes,
            "refreshes": self.refreshes,
            "torn_records": self.torn_records,
            "compactions": self.compactions,
            "probe_samples": len(self._probe_us),
        }
        out.update(self.probe_percentiles())
        return out

    def format_stats(self) -> str:
        s = self.stats()
        state = "" if s["enabled"] else " (disabled)"
        return (
            f"disk cache: {s['hits']} hits, {s['misses']} misses, "
            f"{s['writes']} writes, {s['evictions']} evictions, "
            f"{s['corrupt']} corrupt, {s['quarantined']} quarantined, "
            f"{s['bypasses']} bypasses, "
            f"{s['entries']} entries ({s['bytes'] / 1e6:.1f} MB)"
            f"{state} at {self.root()}"
        )
