"""Sweep planner: collect → dedup → batch-dispatch → serve from cache.

Every sweep driver in the library — ``run_table3``, the sensitivity
perturbation study, the scaling curve, the ablation variants,
``full_report``'s prewarm — ultimately needs a *set* of ``(kernel,
machine, kwargs)`` cells.  Before this module each driver handed its
list to the executor independently, so overlapping cells (the shared
Table 3 baselines, a sensitivity sweep's unperturbed anchors) were
re-requested and, with caching off, re-simulated.

The planner makes the request set a first-class object:

1. **collect** — drivers add cells to a :class:`SweepPlan` (or pass a
   list to :func:`execute_requests`), receiving a slot per *request*;
2. **dedup** — requests are folded by content key
   (:func:`~repro.perf.cache.cache_key`) *before* any execution, and
   independently of whether the caches are enabled — structural
   deduplication, not a cache artifact;
3. **probe** — each unique cell is answered from tier 1 (the in-memory
   :data:`~repro.perf.cache.RUN_CACHE`) or tier 2 (the persistent
   :data:`~repro.perf.diskcache.DISK_CACHE`, promoting hits into
   tier 1) where possible;
4. **tensor-partition** — the misses are partitioned by
   :func:`repro.perf.tensorsweep.plan_units` into *dispatch units*:
   cells that differ only in float calibration constants collapse into
   one tensor batch group (a single structure pass evaluated as numpy
   arrays over the whole grid), everything else — traced runs,
   non-batchable kwargs, singleton groups — stays a per-cell unit;
5. **batch-dispatch** — units go to the process pool in *chunks* (one
   pool submission per chunk of units; a tensor batch counts as one
   unit regardless of its cell count), supervised by
   :class:`repro.resilience.Supervisor` (crashed workers are retried, a
   poisoned cell is isolated, and only an unusable pool transport
   degrades the batch to serial — see docs/robustness.md); workers run
   ``registry.run`` or the batch runner, writing results straight into
   the shared disk tier per cell, so sibling workers' parents and
   future processes hit without re-simulating;
6. **serve** — duplicate slots are filled with independent copies, and
   drivers index results by the slots they collected.

Planner activity is counted through :mod:`repro.perf.timers`
(``planner.requests``, ``planner.duplicates``, ``planner.memory_hits``,
``planner.disk_hits``, ``planner.executed``, ``planner.units``), which
the TELEMETRY registry exposes under ``perf.timers.counters.*``; the
tensor engine's own counters live in the ``perf.tensor`` namespace.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.perf import tensorsweep, timers
from repro.perf.cache import RUN_CACHE, cache_key
from repro.perf.diskcache import DISK_CACHE

#: One sweep cell: (kernel, machine, mapping kwargs).
RunRequest = Tuple[str, str, Dict[str, Any]]


def execute_requests(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Evaluate run requests in order; the planner's full pipeline.

    Returns one :class:`~repro.arch.base.KernelRun` per request.
    ``jobs > 1`` dispatches cache misses to a process pool in chunked
    batches; ``chunk_size`` overrides the batch size (default: enough
    chunks for ~4 per worker, for load balance without per-cell
    submission overhead).
    """
    from repro.obs.ledger import record
    from repro.obs.progress import current_reporter
    from repro.perf import executor

    requests = [
        (kernel, machine, dict(kwargs)) for kernel, machine, kwargs in requests
    ]
    n_jobs = executor.resolve_jobs(jobs)
    results: List[Any] = [None] * len(requests)
    timers.count("planner.requests", len(requests))

    # Collect + dedup: one representative slot per content key.  Keys
    # are computed even with the caches disabled — identical requests
    # are pure-function calls, so evaluating one per key is a
    # structural optimisation, not a caching assumption.
    pending: List[Tuple[int, RunRequest, Optional[str]]] = []
    seen_keys: Dict[str, int] = {}
    duplicates: List[Tuple[int, int]] = []  # (slot, representative slot)
    disk_probe: List[Tuple[int, str]] = []  # tier-1 misses to batch-probe
    memory_hits = disk_hits = 0
    with timers.timer("sweep.cache-probe"):
        for i, (kernel, machine, kwargs) in enumerate(requests):
            key = cache_key(kernel, machine, kwargs)
            if key is not None:
                if key in seen_keys:
                    duplicates.append((i, seen_keys[key]))
                    continue
                # Tier 1: in-memory memo.
                if RUN_CACHE.enabled:
                    hit = RUN_CACHE.lookup(key)
                    if hit is not None:
                        results[i] = hit
                        seen_keys[key] = i
                        memory_hits += 1
                        timers.count("planner.memory_hits")
                        continue
                seen_keys[key] = i
                if DISK_CACHE.enabled:
                    disk_probe.append((i, key))
            pending.append((i, requests[i], key))
        if disk_probe:
            # Tier 2: one batched probe against the persistent store —
            # a single manifest sync and segment-ordered payload reads
            # instead of a per-key index walk (promote hits to tier 1).
            served = DISK_CACHE.get_many([key for _, key in disk_probe])
            if served:
                for i, key in disk_probe:
                    value = served.get(key)
                    if value is not None:
                        if RUN_CACHE.enabled:
                            RUN_CACHE.insert(key, value)
                        results[i] = value
                        disk_hits += 1
                        timers.count("planner.disk_hits")
                pending = [
                    item for item in pending if results[item[0]] is None
                ]
    if duplicates:
        timers.count("planner.duplicates", len(duplicates))

    reporter = current_reporter()
    if pending:
        timers.count("planner.executed", len(pending))
        # Partition the misses into dispatch units: tensor batch groups
        # (one structure pass, whole calibration grid) and per-cell
        # fallbacks.  A batch counts as ONE dispatch unit — chunk sizing
        # and pool submissions see units, not the batch width.
        units = tensorsweep.plan_units(
            [(request, key) for _, request, key in pending]
        )
        timers.count("planner.units", len(units))
        batch_units = [
            u for u in units if isinstance(u, tensorsweep.BatchGroup)
        ]
        batched_cells = sum(len(u.positions) for u in batch_units)
        record(
            "sweep.plan",
            requests=len(requests),
            duplicates=len(duplicates),
            memory_hits=memory_hits,
            disk_hits=disk_hits,
            executed=len(pending),
            units=len(units),
            batch_units=len(batch_units),
            batched_cells=batched_cells,
            jobs=n_jobs,
        )
        for unit in units:
            record(
                "planner.dispatch",
                unit="batch"
                if isinstance(unit, tensorsweep.BatchGroup)
                else "cell",
                cells=len(unit.positions),
            )
        if reporter is not None:
            reporter.begin_sweep(
                "sweep",
                total_cells=len(requests),
                cached_cells=len(requests) - len(pending),
                total_units=len(units),
                batch_units=len(batch_units),
                batched_cells=batched_cells,
            )
        pooled = False
        unit_outcomes = None
        if n_jobs > 1 and len(units) > 1:
            unit_outcomes = executor._run_unit_pool(
                units, n_jobs, chunk_size=chunk_size
            )
            pooled = unit_outcomes is not None
            if not pooled and reporter is not None:
                reporter.note_ladder("serial")
        if unit_outcomes is None:
            # Serial path: execute_unit handles both cache tiers itself
            # (registry.run for singles, the tensor engine's per-cell
            # round-trip for batches).
            with timers.timer("sweep.serial"):
                unit_outcomes = []
                for unit in units:
                    unit_outcomes.append(tensorsweep.execute_unit(unit))
                    if reporter is not None:
                        reporter.advance(
                            cells=len(unit.positions), units=1
                        )
        # Scatter unit results back to pending order.
        outcomes: List[Any] = [None] * len(pending)
        for unit, unit_results in zip(units, unit_outcomes):
            for position, outcome in zip(unit.positions, unit_results):
                outcomes[position] = outcome
        if pooled:
            # Workers simulated in their own processes and wrote the
            # disk tier themselves (their registry.run / tensor engine
            # does); seed this process's memory tier so later calls
            # in-session hit.
            for (_, _, key), outcome in zip(pending, outcomes):
                if key is not None and RUN_CACHE.enabled:
                    RUN_CACHE.insert(key, outcome)
        for (i, _, _), outcome in zip(pending, outcomes):
            results[i] = outcome
        if reporter is not None:
            reporter.end_sweep()
    elif requests:
        # Fully served from the tiers: still an observable plan.
        record(
            "sweep.plan",
            requests=len(requests),
            duplicates=len(duplicates),
            memory_hits=memory_hits,
            disk_hits=disk_hits,
            executed=0,
            units=0,
            batch_units=0,
            batched_cells=0,
            jobs=n_jobs,
        )

    for i, rep in duplicates:
        results[i] = copy.deepcopy(results[rep])
    return results


class SweepPlan:
    """A collected request set with slot-stable, dedup-aware execution.

    Drivers call :meth:`add` while enumerating the cells they will need
    — duplicate cells (by content key) share one slot, so the shared
    baselines of a sensitivity sweep are *hoisted* at collection time —
    then :meth:`execute` once, and read results by slot::

        plan = SweepPlan()
        base = plan.add("corner_turn", "viram")
        up = plan.add("corner_turn", "viram", calibration=perturbed)
        runs = plan.execute(jobs=4)
        elasticity = runs[up].cycles / runs[base].cycles
    """

    def __init__(self) -> None:
        self._requests: List[RunRequest] = []
        self._by_key: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._requests)

    def add(self, kernel: str, machine: str, **kwargs: Any) -> int:
        """Collect one cell; returns its slot.  A cell already collected
        (same content key) returns the existing slot instead of growing
        the plan."""
        key = cache_key(kernel, machine, kwargs)
        if key is not None and key in self._by_key:
            return self._by_key[key]
        slot = len(self._requests)
        self._requests.append((kernel, machine, dict(kwargs)))
        if key is not None:
            self._by_key[key] = slot
        return slot

    @property
    def requests(self) -> List[RunRequest]:
        """The deduped request list, in collection order."""
        return [
            (kernel, machine, dict(kwargs))
            for kernel, machine, kwargs in self._requests
        ]

    def execute(
        self,
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        """Run the plan; returns one result per slot."""
        return execute_requests(
            self._requests, jobs=jobs, chunk_size=chunk_size
        )
