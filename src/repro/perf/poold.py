"""Persistent worker pool: spawn once, reuse across sweeps.

Every supervised sweep used to spawn a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` and tear it down in the
``Supervisor.run`` epilogue — for a report that dispatches several
sweeps, most of the parallel wall-clock went to process startup and
interpreter warm-up, not simulation (the same fixed-cost lesson the PrIM
measurements draw for host↔accelerator dispatch).  This module keeps
**one pool per process**:

* lazily spawned on first use, with an initializer that preloads the
  calibration tables and the mapping registry so the first chunk a
  worker receives does not pay the import bill;
* *leased* to one :class:`~repro.resilience.supervisor.Supervisor` at a
  time — the supervisor's recovery ladder still owns failure handling:
  a crashed pool is discarded (and counted) exactly as before, and the
  next lease spawns a fresh one;
* shut down implicitly at process exit (``ProcessPoolExecutor`` joins
  its workers atexit), or explicitly via :func:`shutdown`.

``REPRO_POOL_PERSIST=0`` restores the old spawn-per-sweep behaviour;
re-read on every lease so tests and subprocesses can flip it.  Activity
is counted for the ``perf.pool`` telemetry namespace (``spawns``,
``leases``, ``reuses``, ``discards``, ``workers``) and the pool
lifecycle is recorded in the flight-recorder ledger (``pool.spawn`` /
``pool.discard``).

Request payloads shrink through :func:`intern_requests`: a sweep's
``(kernel, machine, kwargs)`` cells repeat the same few kernel/machine
strings and kwargs shapes, so chunks are sent as an interning table
plus compact ``(kernel_idx, machine_idx, kwargs_delta)`` tuples and
rebuilt worker-side by :func:`expand_requests`.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "acquire",
    "discard",
    "expand_requests",
    "intern_requests",
    "persistent_enabled",
    "pool_stats",
    "shutdown",
]

_LOCK = threading.Lock()
_POOL = None
_POOL_WORKERS = 0
_PID = os.getpid()

_STATS = {
    "spawns": 0,
    "leases": 0,
    "reuses": 0,
    "discards": 0,
    "workers": 0,
}


def persistent_enabled() -> bool:
    """Whether pool persistence is on (``REPRO_POOL_PERSIST``, default
    on; re-read per call)."""
    return os.environ.get("REPRO_POOL_PERSIST", "1") != "0"


def _warm_worker() -> None:
    """Pool-worker initializer: pay the heavy imports once per worker,
    not once per chunk.  Never raises — a failed preload only means the
    first chunk imports lazily, as it always did."""
    try:
        import repro.calibration  # noqa: F401  (calibration tables)
        from repro.mappings import registry

        registry.available()  # materialise the mapping registry
    except Exception:
        pass


def _count(name: str, n: int = 1) -> None:
    with _LOCK:
        _STATS[name] += n


def pool_stats() -> Dict[str, int]:
    """The ``perf.pool`` telemetry source."""
    with _LOCK:
        out = dict(_STATS)
        out["alive"] = int(_POOL is not None)
        out["persistent"] = int(persistent_enabled())
    return out


def acquire(n_jobs: int):
    """A process pool with at least ``n_jobs`` workers.

    Reuses the process-wide pool when persistence is enabled and the
    held pool is wide enough; otherwise spawns.  Exceptions from the
    spawn propagate to the caller (the Supervisor classifies them).
    A forked child never inherits the parent's lease.
    """
    global _POOL, _POOL_WORKERS, _PID
    import concurrent.futures

    with _LOCK:
        if _PID != os.getpid():
            # Forked child: the inherited handle points at the parent's
            # workers; drop it without joining them.
            _POOL = None
            _POOL_WORKERS = 0
            _PID = os.getpid()
        _STATS["leases"] += 1
        if (
            persistent_enabled()
            and _POOL is not None
            and _POOL_WORKERS >= n_jobs
        ):
            _STATS["reuses"] += 1
            return _POOL
    if _POOL is not None:
        # Wrong width or persistence switched off: retire the held pool.
        discard(wait=False)
    pool = concurrent.futures.ProcessPoolExecutor(
        max_workers=n_jobs, initializer=_warm_worker
    )
    _count("spawns")
    with _LOCK:
        _STATS["workers"] = n_jobs
    _record_event("pool.spawn", jobs=n_jobs)
    if persistent_enabled():
        with _LOCK:
            _POOL = pool
            _POOL_WORKERS = n_jobs
    return pool


def release(pool) -> None:
    """Return a leased pool.  Persistent pools stay warm for the next
    sweep; a non-persistent (or foreign) pool is shut down."""
    with _LOCK:
        held = pool is _POOL
    if held and persistent_enabled():
        return
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    with _LOCK:
        if pool is _POOL:
            globals()["_POOL"] = None
            globals()["_POOL_WORKERS"] = 0


def discard(pool=None, wait: bool = False) -> None:
    """Retire a (possibly broken) pool for good.

    The supervisor calls this instead of :func:`release` when the pool
    transport failed — the next :func:`acquire` spawns fresh workers.
    With ``pool=None`` the held persistent pool (if any) is retired.
    """
    global _POOL, _POOL_WORKERS
    with _LOCK:
        target = pool if pool is not None else _POOL
        if target is _POOL and _POOL is not None:
            _POOL = None
            _POOL_WORKERS = 0
    if target is None:
        return
    _count("discards")
    _record_event("pool.discard")
    try:
        target.shutdown(wait=wait, cancel_futures=True)
    except Exception:
        pass


def shutdown(wait: bool = True) -> None:
    """Tear down the persistent pool (tests, clean process exit)."""
    discard(wait=wait)


def _record_event(name: str, **args: Any) -> None:
    try:
        from repro.obs.ledger import record

        record(name, **args)
    except Exception:
        pass


# -- request interning -------------------------------------------------
#
# A sweep chunk repeats the same few kernel and machine names, and its
# kwargs dicts usually share every key except the one being swept.  The
# interned form sends each distinct string once and each kwargs as a
# delta against the chunk's most common kwargs shape, shrinking the
# pickled payload the parent streams to each worker.

#: One sweep cell: (kernel, machine, mapping kwargs).
RunRequest = Tuple[str, str, Dict[str, Any]]

#: Interned chunk: (kernel names, machine names, base kwargs,
#: [(kernel_idx, machine_idx, kwargs_delta, dropped_keys), ...]).
InternedChunk = Tuple[
    List[str], List[str], Dict[str, Any],
    List[Tuple[int, int, Dict[str, Any], Tuple[str, ...]]],
]


def intern_requests(requests: Sequence[RunRequest]) -> InternedChunk:
    """Compact a chunk of run requests for pool transport."""
    kernels: List[str] = []
    machines: List[str] = []
    kernel_idx: Dict[str, int] = {}
    machine_idx: Dict[str, int] = {}

    # The base kwargs: the first request's dict — sweeps perturb one
    # constant at a time, so most cells share everything else with it.
    base: Dict[str, Any] = dict(requests[0][2]) if requests else {}
    cells: List[Tuple[int, int, Dict[str, Any], Tuple[str, ...]]] = []
    for kernel, machine, kwargs in requests:
        ki = kernel_idx.get(kernel)
        if ki is None:
            ki = kernel_idx[kernel] = len(kernels)
            kernels.append(kernel)
        mi = machine_idx.get(machine)
        if mi is None:
            mi = machine_idx[machine] = len(machines)
            machines.append(machine)
        delta = {
            k: v
            for k, v in kwargs.items()
            if k not in base or base[k] is not v and base[k] != v
        }
        dropped = tuple(k for k in base if k not in kwargs)
        cells.append((ki, mi, delta, dropped))
    return kernels, machines, base, cells


def expand_requests(chunk: InternedChunk) -> List[RunRequest]:
    """Rebuild the full request list from its interned form."""
    kernels, machines, base, cells = chunk
    out: List[RunRequest] = []
    for ki, mi, delta, dropped in cells:
        kwargs = dict(base)
        for key in dropped:
            kwargs.pop(key, None)
        kwargs.update(delta)
        out.append((kernels[ki], machines[mi], kwargs))
    return out
