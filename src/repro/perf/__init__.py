"""Performance layer: two-tier run caching, planned sweeps, timers.

Orthogonal tools, all invisible to the modelled results:

* :mod:`repro.perf.cache` — tier 1: an in-process content-addressed
  memoization cache for :func:`repro.mappings.registry.run`; identical
  requests are served from defensive copies instead of re-simulated.
* :mod:`repro.perf.diskcache` — tier 2: a persistent file-per-key store
  (atomic publish, digest-verified reads, LRU pruning) that shares runs
  across processes — CI jobs, CLI invocations, and pool workers all
  warm each other.
* :mod:`repro.perf.planner` — the sweep planner: collects every cell a
  driver will need, dedups the set by content key, probes both tiers,
  and dispatches only the misses.
* :mod:`repro.perf.executor` — the dispatch mechanics: chunked
  process-pool batches under a :class:`repro.resilience.Supervisor`
  (retry/deadline/isolate, with serial degradation only when the pool
  transport itself is unusable — counted, never silent); the CLI's
  ``report --jobs N`` and the sensitivity/scaling sweeps' ``jobs=``
  plumb into it.
* :mod:`repro.perf.timers` — nested wall-time timers and counters for
  profiling the simulator itself (``report --perf``).

Determinism contract: everything in this package must leave modelled
numbers bit-identical — the caches, planner, and executor only change
*when and where* a mapping executes, never what it returns, and the
regression pins plus the cache-correctness tests and differential
oracles (:mod:`repro.check`) enforce that.
"""

#: Re-exported name -> home module.  Resolved lazily through the module
#: ``__getattr__`` below so that ``import repro.perf`` (and with it the
#: CLI front door) stays free of numpy and the modelling stack until a
#: simulation or cache probe actually needs them — the warm/fast-start
#: path depends on this staying lazy.
_EXPORTS = {
    "RUN_CACHE": "repro.perf.cache",
    "RunCache": "repro.perf.cache",
    "cache_key": "repro.perf.cache",
    "model_version_stamp": "repro.perf.cache",
    "DISK_CACHE": "repro.perf.diskcache",
    "DiskCache": "repro.perf.diskcache",
    "PackedDiskCache": "repro.perf.index",
    "RunRequest": "repro.perf.executor",
    "resolve_jobs": "repro.perf.executor",
    "run_cells": "repro.perf.executor",
    "SweepPlan": "repro.perf.planner",
    "execute_requests": "repro.perf.planner",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
