"""Performance layer: two-tier run caching, planned sweeps, timers.

Orthogonal tools, all invisible to the modelled results:

* :mod:`repro.perf.cache` — tier 1: an in-process content-addressed
  memoization cache for :func:`repro.mappings.registry.run`; identical
  requests are served from defensive copies instead of re-simulated.
* :mod:`repro.perf.diskcache` — tier 2: a persistent file-per-key store
  (atomic publish, digest-verified reads, LRU pruning) that shares runs
  across processes — CI jobs, CLI invocations, and pool workers all
  warm each other.
* :mod:`repro.perf.planner` — the sweep planner: collects every cell a
  driver will need, dedups the set by content key, probes both tiers,
  and dispatches only the misses.
* :mod:`repro.perf.executor` — the dispatch mechanics: chunked
  process-pool batches under a :class:`repro.resilience.Supervisor`
  (retry/deadline/isolate, with serial degradation only when the pool
  transport itself is unusable — counted, never silent); the CLI's
  ``report --jobs N`` and the sensitivity/scaling sweeps' ``jobs=``
  plumb into it.
* :mod:`repro.perf.timers` — nested wall-time timers and counters for
  profiling the simulator itself (``report --perf``).

Determinism contract: everything in this package must leave modelled
numbers bit-identical — the caches, planner, and executor only change
*when and where* a mapping executes, never what it returns, and the
regression pins plus the cache-correctness tests and differential
oracles (:mod:`repro.check`) enforce that.
"""

from repro.perf.cache import (
    RUN_CACHE,
    RunCache,
    cache_key,
    model_version_stamp,
)
from repro.perf.diskcache import DISK_CACHE, DiskCache
from repro.perf.executor import RunRequest, resolve_jobs, run_cells
from repro.perf.planner import SweepPlan, execute_requests

__all__ = [
    "DISK_CACHE",
    "DiskCache",
    "RUN_CACHE",
    "RunCache",
    "RunRequest",
    "SweepPlan",
    "cache_key",
    "execute_requests",
    "model_version_stamp",
    "resolve_jobs",
    "run_cells",
]
