"""Performance layer: run-result memoization, parallel sweeps, timers.

Three orthogonal tools, all invisible to the modelled results:

* :mod:`repro.perf.cache` — a content-addressed memoization cache for
  :func:`repro.mappings.registry.run`; identical requests are served
  from defensive copies instead of re-simulated.
* :mod:`repro.perf.executor` — a process-pool sweep executor (with a
  transparent serial fallback) for lists of independent run requests;
  the CLI's ``report --jobs N`` and the sensitivity/scaling sweeps'
  ``jobs=`` plumb into it.
* :mod:`repro.perf.timers` — nested wall-time timers and counters for
  profiling the simulator itself (``report --perf``).

Determinism contract: everything in this package must leave modelled
numbers bit-identical — the cache and executor only change *when and
where* a mapping executes, never what it returns, and the regression
pins plus the cache-correctness tests enforce that.
"""

from repro.perf.cache import RUN_CACHE, RunCache, cache_key
from repro.perf.executor import RunRequest, resolve_jobs, run_cells

__all__ = [
    "RUN_CACHE",
    "RunCache",
    "RunRequest",
    "cache_key",
    "resolve_jobs",
    "run_cells",
]
