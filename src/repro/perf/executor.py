"""Parallel sweep executor for independent kernel runs.

A sweep — Table 3's fifteen cells, a sensitivity perturbation study, a
scaling curve — is a list of *run requests* ``(kernel, machine,
kwargs)`` whose executions are independent and deterministic.  This
module evaluates such a list either serially or on a
:class:`~concurrent.futures.ProcessPoolExecutor`, returning results in
request order; because the mappings are pure functions, the parallel
results are identical to serial execution.

The executor cooperates with the run cache (:mod:`repro.perf.cache`):
requests already cached are answered without dispatch, and results
computed by workers are inserted into the parent process's cache so
later experiments in the same session hit.

Process pools are not available everywhere (restricted sandboxes,
interpreters without ``fork``/``spawn``); any pool *infrastructure*
failure falls back to serial execution, emitting a ``RuntimeWarning``
that carries the original exception.  Failures raised by the mappings
themselves (``ReproError`` and friends) propagate.
"""

from __future__ import annotations

import pickle
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.perf import timers
from repro.perf.cache import RUN_CACHE, cache_key

#: One sweep cell: (kernel, machine, mapping kwargs).
RunRequest = Tuple[str, str, Dict[str, Any]]


def _execute(request: RunRequest):
    """Worker entry point: run one request (top-level for pickling)."""
    kernel, machine, kwargs = request
    from repro.mappings import registry

    return registry.run(kernel, machine, **kwargs)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/0/1 mean serial."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    return max(1, jobs)


def run_cells(
    requests: Sequence[RunRequest], jobs: Optional[int] = None
) -> List[Any]:
    """Evaluate run requests, in order; ``jobs > 1`` uses a process pool.

    Returns one :class:`~repro.arch.base.KernelRun` per request.  Cached
    requests are answered from the run cache without dispatch; fresh
    results are inserted into it.  Duplicate requests in one sweep are
    evaluated once.
    """
    requests = [
        (kernel, machine, dict(kwargs)) for kernel, machine, kwargs in requests
    ]
    n_jobs = resolve_jobs(jobs)
    results: List[Any] = [None] * len(requests)

    # Answer what the cache already holds; collect the rest, folding
    # duplicate keys into one evaluation.
    pending: List[Tuple[int, RunRequest, Optional[str]]] = []
    seen_keys: Dict[str, int] = {}
    duplicates: List[Tuple[int, int]] = []  # (index, index of first copy)
    with timers.timer("sweep.cache-probe"):
        for i, (kernel, machine, kwargs) in enumerate(requests):
            key = (
                cache_key(kernel, machine, kwargs)
                if RUN_CACHE.enabled
                else None
            )
            if key is not None:
                hit = RUN_CACHE.lookup(key)
                if hit is not None:
                    results[i] = hit
                    continue
                if key in seen_keys:
                    duplicates.append((i, seen_keys[key]))
                    continue
                seen_keys[key] = i
            pending.append((i, requests[i], key))

    if pending:
        if n_jobs > 1 and len(pending) > 1:
            outcomes = _run_pool(
                [request for _, request, _ in pending], n_jobs
            )
        else:
            outcomes = None
        if outcomes is None:
            with timers.timer("sweep.serial"):
                outcomes = [_execute(request) for _, request, _ in pending]
        else:
            # Parallel workers computed in their own processes; seed the
            # parent cache so later calls in this session hit.
            for (_, _, key), outcome in zip(pending, outcomes):
                if key is not None and RUN_CACHE.enabled:
                    RUN_CACHE.insert(key, outcome)
        for (i, _, _), outcome in zip(pending, outcomes):
            results[i] = outcome

    for i, first in duplicates:
        import copy

        results[i] = copy.deepcopy(results[first])
    return results


def _run_pool(
    requests: Sequence[RunRequest], n_jobs: int
) -> Optional[List[Any]]:
    """Evaluate on a process pool; ``None`` if the pool cannot be used
    (caller falls back to serial).  Mapping errors propagate."""
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - stdlib always has it
        return None
    try:
        with timers.timer("sweep.parallel"):
            with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                return list(pool.map(_execute, requests))
    except ReproError:
        raise
    except (BrokenProcessPool, OSError, pickle.PicklingError, ValueError,
            RuntimeError) as exc:
        # Pool infrastructure unavailable (sandbox, no fork, unpicklable
        # payload): run the sweep serially instead.  The fallback keeps
        # results identical, but silently losing the requested
        # parallelism hides real environment problems — surface it.
        warnings.warn(
            f"process pool unavailable ({type(exc).__name__}: {exc}); "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=3,
        )
        timers.count("sweep.pool_fallback")
        return None
