"""Parallel sweep executor for independent kernel runs.

A sweep — Table 3's fifteen cells, a sensitivity perturbation study, a
scaling curve — is a list of *run requests* ``(kernel, machine,
kwargs)`` whose executions are independent and deterministic.  This
module evaluates such a list either serially or on a
:class:`~concurrent.futures.ProcessPoolExecutor`, returning results in
request order; because the mappings are pure functions, the parallel
results are identical to serial execution.

Planning — deduplication, the two-tier cache probe, serving duplicate
slots — lives in :mod:`repro.perf.planner`; :func:`run_cells` is the
stable entry point that hands its request list to the planner.  This
module owns the *mechanics* of dispatch: the worker entry points and
the chunked process pool (one pool submission per chunk of cells, not
one per cell — a sweep of hundreds of small cells pays pickling and
scheduling overhead per chunk instead of per run).  Workers execute via
``registry.run``, which writes fresh results straight into the shared
disk tier, so sibling workers' parents and future processes hit.

Process pools are not available everywhere (restricted sandboxes,
interpreters without ``fork``/``spawn``); any pool *infrastructure*
failure falls back to serial execution, emitting a ``RuntimeWarning``
that carries the original exception.  Failures raised by the mappings
themselves (``ReproError`` and friends) propagate.
"""

from __future__ import annotations

import math
import pickle
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.perf import timers

__all__ = ["RunRequest", "resolve_jobs", "run_cells", "chunked"]

#: One sweep cell: (kernel, machine, mapping kwargs).
RunRequest = Tuple[str, str, Dict[str, Any]]

#: Target pool submissions per worker: enough chunks for load balance,
#: few enough that submission overhead stays amortised.
CHUNKS_PER_WORKER = 4


def _execute(request: RunRequest):
    """Worker entry point: run one request (top-level for pickling)."""
    kernel, machine, kwargs = request
    from repro.mappings import registry

    return registry.run(kernel, machine, **kwargs)


def _execute_chunk(chunk: Sequence[RunRequest]) -> List[Any]:
    """Worker entry point: run one chunk of requests, in order.

    Each run goes through ``registry.run``, so the worker's own cache
    tiers apply — in particular every fresh result is persisted to the
    shared disk tier before the chunk is pickled back to the parent.
    """
    return [_execute(request) for request in chunk]


def chunked(
    requests: Sequence[RunRequest], n_jobs: int,
    chunk_size: Optional[int] = None,
) -> List[List[RunRequest]]:
    """Split ``requests`` into dispatch batches of ``chunk_size``
    (default: ~``CHUNKS_PER_WORKER`` chunks per worker)."""
    if chunk_size is None:
        chunk_size = max(
            1, math.ceil(len(requests) / (n_jobs * CHUNKS_PER_WORKER))
        )
    chunk_size = max(1, int(chunk_size))
    return [
        list(requests[i:i + chunk_size])
        for i in range(0, len(requests), chunk_size)
    ]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/0/1 mean serial."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    return max(1, jobs)


def run_cells(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Evaluate run requests, in order; ``jobs > 1`` uses a process pool.

    Returns one :class:`~repro.arch.base.KernelRun` per request.
    Requests already held by either cache tier are answered without
    dispatch; fresh results land in both tiers.  Duplicate requests in
    one sweep are evaluated once.  This is a thin front over
    :func:`repro.perf.planner.execute_requests`.
    """
    from repro.perf.planner import execute_requests

    return execute_requests(requests, jobs=jobs, chunk_size=chunk_size)


def _run_pool(
    requests: Sequence[RunRequest], n_jobs: int,
    chunk_size: Optional[int] = None,
) -> Optional[List[Any]]:
    """Evaluate on a process pool, one submission per chunk; ``None`` if
    the pool cannot be used (caller falls back to serial).  Mapping
    errors propagate."""
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - stdlib always has it
        return None
    chunks = chunked(requests, n_jobs, chunk_size)
    try:
        with timers.timer("sweep.parallel"):
            with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                timers.count("sweep.pool_chunks", len(chunks))
                batched = list(pool.map(_execute_chunk, chunks))
        return [result for batch in batched for result in batch]
    except ReproError:
        raise
    except (BrokenProcessPool, OSError, pickle.PicklingError, ValueError,
            RuntimeError) as exc:
        # Pool infrastructure unavailable (sandbox, no fork, unpicklable
        # payload): run the sweep serially instead.  The fallback keeps
        # results identical, but silently losing the requested
        # parallelism hides real environment problems — surface it.
        warnings.warn(
            f"process pool unavailable ({type(exc).__name__}: {exc}); "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=3,
        )
        timers.count("sweep.pool_fallback")
        return None
