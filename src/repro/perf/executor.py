"""Parallel sweep executor for independent kernel runs.

A sweep — Table 3's fifteen cells, a sensitivity perturbation study, a
scaling curve — is a list of *run requests* ``(kernel, machine,
kwargs)`` whose executions are independent and deterministic.  This
module evaluates such a list either serially or on a
:class:`~concurrent.futures.ProcessPoolExecutor`, returning results in
request order; because the mappings are pure functions, the parallel
results are identical to serial execution.

Planning — deduplication, the two-tier cache probe, serving duplicate
slots — lives in :mod:`repro.perf.planner`; :func:`run_cells` is the
stable entry point that hands its request list to the planner.  This
module owns the *mechanics* of dispatch: the worker entry points and
the chunked process pool (one pool submission per chunk of cells, not
one per cell — a sweep of hundreds of small cells pays pickling and
scheduling overhead per chunk instead of per run).  Workers execute via
``registry.run``, which writes fresh results straight into the shared
disk tier, so sibling workers' parents and future processes hit.

Dispatch is *supervised* (:class:`repro.resilience.Supervisor`): a
crashed worker or a chunk that misses its deadline is retried with
backoff on a resurrected pool, a persistently failing cell is isolated
and reported precisely, and only a failure of the pool *transport*
itself (restricted sandboxes, interpreters without ``fork``/``spawn``,
unpicklable payloads) degrades the sweep to serial execution.  Each
degradation is counted under ``resilience.degradations`` with the
classified reason string recorded in telemetry — not a warning that
scrolls away.  Failures raised by the mappings themselves
(``ReproError`` and friends) propagate unchanged.
"""

from __future__ import annotations

import math
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, TransientError
from repro.perf import timers

__all__ = ["RunRequest", "resolve_jobs", "run_cells", "chunked"]

#: One sweep cell: (kernel, machine, mapping kwargs).
RunRequest = Tuple[str, str, Dict[str, Any]]

#: Target pool submissions per worker: enough chunks for load balance,
#: few enough that submission overhead stays amortised.
CHUNKS_PER_WORKER = 4


def _execute(request: RunRequest):
    """Worker entry point: run one request (top-level for pickling)."""
    kernel, machine, kwargs = request
    from repro.mappings import registry

    return registry.run(kernel, machine, **kwargs)


def _execute_chunk(chunk: Sequence[RunRequest]) -> List[Any]:
    """Worker entry point: run one chunk of requests, in order.

    Each run goes through ``registry.run``, so the worker's own cache
    tiers apply — in particular every fresh result is persisted to the
    shared disk tier before the chunk is pickled back to the parent.
    """
    if os.environ.get("REPRO_CHAOS"):
        from repro.resilience import chaos

        chaos.on_worker_chunk()
    return [_execute(request) for request in chunk]


def _execute_unit(unit) -> List[Any]:
    """Worker entry point: run one dispatch unit (top-level for
    pickling).  A :class:`~repro.perf.tensorsweep.BatchGroup` evaluates
    its whole calibration grid in one call; a
    :class:`~repro.perf.tensorsweep.SingleCell` goes through
    ``registry.run``.  Either way the worker's cache tiers apply —
    fresh results are persisted to the shared disk tier per cell."""
    from repro.perf import tensorsweep

    return tensorsweep.execute_unit(unit)


def _execute_unit_chunk(chunk: Sequence[Any]) -> List[List[Any]]:
    """Worker entry point: run one chunk of dispatch units, in order."""
    if os.environ.get("REPRO_CHAOS"):
        from repro.resilience import chaos

        chaos.on_worker_chunk()
    return [_execute_unit(unit) for unit in chunk]


def chunked(
    requests: Sequence[RunRequest], n_jobs: int,
    chunk_size: Optional[int] = None,
) -> List[List[RunRequest]]:
    """Split ``requests`` into *balanced* dispatch batches.

    ``chunk_size`` caps the batch size (default: enough chunks for
    ~``CHUNKS_PER_WORKER`` per worker).  Work is spread near-evenly
    across the resulting chunks — sizes differ by at most one — instead
    of filling every chunk to the cap and leaving the remainder in a
    runt tail: with uniform slicing, 17 cells at cap 8 split 8/8/1, and
    whichever worker draws the 1-cell chunk idles while its siblings
    each grind through 8.  Balanced, the same sweep splits 6/6/5.
    """
    if not requests:
        return []
    if chunk_size is None:
        chunk_size = max(
            1, math.ceil(len(requests) / (n_jobs * CHUNKS_PER_WORKER))
        )
    chunk_size = max(1, int(chunk_size))
    n_chunks = math.ceil(len(requests) / chunk_size)
    base, extra = divmod(len(requests), n_chunks)
    chunks: List[List[RunRequest]] = []
    start = 0
    for ci in range(n_chunks):
        size = base + (1 if ci < extra else 0)
        chunks.append(list(requests[start:start + size]))
        start += size
    return chunks


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/0/1 mean serial."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    return max(1, jobs)


def run_cells(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Evaluate run requests, in order; ``jobs > 1`` uses a process pool.

    Returns one :class:`~repro.arch.base.KernelRun` per request.
    Requests already held by either cache tier are answered without
    dispatch; fresh results land in both tiers.  Duplicate requests in
    one sweep are evaluated once.  This is a thin front over
    :func:`repro.perf.planner.execute_requests`.
    """
    from repro.perf.planner import execute_requests

    return execute_requests(requests, jobs=jobs, chunk_size=chunk_size)


def _run_pool(
    requests: Sequence[RunRequest], n_jobs: int,
    chunk_size: Optional[int] = None,
) -> Optional[List[Any]]:
    """Evaluate on a supervised process pool, one submission per chunk;
    ``None`` if the pool transport cannot be used (caller falls back to
    serial).

    Failure classification is the supervisor's: worker crashes and
    deadline misses are retried internally (and raised as
    :class:`~repro.errors.WorkerCrashError` /
    :class:`~repro.errors.DeadlineExceeded` only once the retry budget
    is spent — those propagate, since re-running a crashing cell
    serially would take this process down too).  A plain
    :class:`~repro.errors.TransientError` means the pool *itself* is
    unusable; that degrades to serial here, counted under
    ``resilience.degradations`` with the reason recorded in telemetry.
    Mapping errors (``ReproError``) propagate unchanged.
    """
    from repro.errors import DeadlineExceeded, WorkerCrashError
    from repro.obs.ledger import record
    from repro.resilience.stats import RESILIENCE
    from repro.resilience.supervisor import Supervisor

    chunks = chunked(requests, n_jobs, chunk_size)
    record(
        "pool.dispatch", jobs=n_jobs, chunks=len(chunks),
        cells=len(requests),
    )
    try:
        with timers.timer("sweep.parallel"):
            timers.count("sweep.pool_chunks", len(chunks))
            batched = Supervisor(n_jobs).run(chunks)
        return [result for batch in batched for result in batch]
    except (WorkerCrashError, DeadlineExceeded):
        raise
    except TransientError as exc:
        # Pool transport unavailable (sandbox, no fork, unpicklable
        # payload): run the sweep serially instead.  The fallback keeps
        # results identical, but silently losing the requested
        # parallelism hides real environment problems — record the
        # classified cause where it persists.
        cause = exc.__cause__
        reason = (
            f"{type(cause).__name__}: {cause}" if cause is not None
            else str(exc)
        )
        RESILIENCE.note_degradation(reason)
        timers.count("sweep.pool_fallback")
        return None


def _run_unit_pool(
    units: Sequence[Any], n_jobs: int,
    chunk_size: Optional[int] = None,
) -> Optional[List[List[Any]]]:
    """Evaluate dispatch units on a supervised process pool; ``None`` if
    the pool transport cannot be used (caller falls back to serial).

    Chunking counts *units*, not cells: a tensor batch of a thousand
    calibration cells is one dispatch unit and one slot in a chunk, so
    pool load-balancing reflects actual submissions instead of
    inflating the chunk count by the batch width.  Failure
    classification matches :func:`_run_pool` — crashes and deadline
    misses propagate once the supervisor's retry budget is spent, a
    transport-level :class:`~repro.errors.TransientError` degrades to
    serial with the reason recorded in telemetry.
    """
    from repro.errors import DeadlineExceeded, WorkerCrashError
    from repro.obs.ledger import record
    from repro.resilience.stats import RESILIENCE
    from repro.resilience.supervisor import Supervisor

    chunks = chunked(units, n_jobs, chunk_size)
    record(
        "pool.dispatch", jobs=n_jobs, chunks=len(chunks), units=len(units),
    )
    try:
        with timers.timer("sweep.parallel"):
            timers.count("sweep.pool_chunks", len(chunks))
            batched = Supervisor(n_jobs, task=_execute_unit_chunk).run(chunks)
        return [result for batch in batched for result in batch]
    except (WorkerCrashError, DeadlineExceeded):
        raise
    except TransientError as exc:
        cause = exc.__cause__
        reason = (
            f"{type(cause).__name__}: {cause}" if cause is not None
            else str(exc)
        )
        RESILIENCE.note_degradation(reason)
        timers.count("sweep.pool_fallback")
        return None
