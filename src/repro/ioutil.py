"""Crash-safe file publication helpers.

Benchmark guards (``BENCH_*.json``), golden-fixture refreshes, and
metrics manifests are all *artifacts another process trusts*: CI diffs
them, the snapshot tests pin them byte-for-byte, and a later session
reads them as ground truth.  A plain ``write_text`` interrupted by a
signal, an OOM kill, or a full disk leaves a truncated file that still
parses as "the artifact" — the worst kind of corruption, silent and
plausible.

Every writer here stages the full content in a temporary file *in the
target's own directory* (same filesystem, so the final rename cannot
degrade to a copy) and publishes it with :func:`os.replace`, which is
atomic on POSIX: readers observe either the old complete artifact or
the new complete artifact, never a torn one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path.

    The temporary staging file is fsynced before the rename so a power
    loss cannot publish a name pointing at unwritten blocks; on any
    failure the staging file is removed and the original artifact is
    left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_bytes(path: Union[str, Path], blob: bytes) -> Path:
    """Atomically replace ``path`` with ``blob``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: Union[str, Path], obj: Any, *, indent: int = 2, **dumps_kwargs: Any
) -> Path:
    """Atomically replace ``path`` with ``obj`` serialised as JSON
    (trailing newline included); returns the path."""
    text = json.dumps(obj, indent=indent, **dumps_kwargs) + "\n"
    return atomic_write_text(path, text)


def append_jsonl(
    path: Union[str, Path], obj: Any, *, fsync: bool = False
) -> Path:
    """Append ``obj`` as one JSON line to ``path``; returns the path.

    The line (record plus trailing newline) is written with a single
    ``os.write`` on an ``O_APPEND`` descriptor: POSIX appends are atomic
    with respect to concurrent appenders for writes of this size, so two
    processes sharing a ledger can never interleave *within* a line —
    the worst a crash can leave is one torn line at the tail, which the
    line-by-line readers quarantine rather than trust.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(str(path), os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
    return path
