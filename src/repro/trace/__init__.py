"""Simulation tracing and telemetry (``repro trace``).

Opt-in observability for the machine models, zero-overhead when off:

* :mod:`repro.trace.tracer` — :class:`Tracer`, the :func:`tracing`
  context manager, and the :func:`active_tracer` hook every
  instrumentation site guards on;
* :mod:`repro.trace.telemetry` — the unified, namespaced metrics
  registry (:data:`TELEMETRY`) over the perf timers, the run cache, and
  the active tracer;
* :mod:`repro.trace.export` — Chrome ``trace_event`` JSON, per-resource
  utilization-timeline SVGs, and the JSON-lines metrics manifest;
* :mod:`repro.trace.run` — :func:`trace_run`, the one-call driver.

See ``docs/observability.md`` for the event schema, track naming, and
how to open a trace in Perfetto.
"""

from repro.trace.export import (
    chrome_busy_by_track,
    metrics_manifest_lines,
    timeline_svg,
    to_chrome,
    write_chrome,
    write_metrics_manifest,
)
from repro.trace.run import trace_run
from repro.trace.telemetry import TELEMETRY, TelemetryRegistry
from repro.trace.tracer import TraceEvent, Tracer, active_tracer, tracing

__all__ = [
    "TELEMETRY",
    "TelemetryRegistry",
    "TraceEvent",
    "Tracer",
    "active_tracer",
    "chrome_busy_by_track",
    "metrics_manifest_lines",
    "timeline_svg",
    "to_chrome",
    "trace_run",
    "tracing",
    "write_chrome",
    "write_metrics_manifest",
]
