"""Structured simulation tracing: spans and instants on simulated time.

A :class:`Tracer` collects *events* emitted by the simulation engine,
the timeline resources, the memory models, and the machine models while
a run executes: complete spans (a DRAM segment streaming, a VFU issue
burst, a Raw tile's compute block) and instants (an engine dispatch, a
cache lookup), every timestamp in **simulated cycles**.  Events live on
named *tracks* — ``dram/viram-onchip``, ``raw/tile03``, ``accounting/
strided loads`` — whose first path component is the resource class the
exporters and invariants group by.

Emission is opt-in and zero-overhead when off: every instrumentation
site guards on :func:`active_tracer`, which is ``None`` unless a
:func:`tracing` context is open, so a disabled run performs one global
read per *block-level* costing call and allocates nothing.  Tracing may
never change modelled numbers — the tracer only observes; the
``invariant.trace.noninterference`` check and the golden snapshots
enforce this.

Usage::

    from repro.trace import Tracer, tracing
    from repro.mappings import registry

    with tracing() as tracer:
        run = registry.run("corner_turn", "viram")
    tracer.busy_by_track()["dram/viram-onchip"]

Cursor placement: most cost models compute *durations*, not start
times.  A span emitted without an explicit ``start`` is placed at its
track's cursor (the end of the last span on that track), producing a
back-to-back timeline per resource; resources that do know real
intervals (:class:`~repro.sim.resources.TimelineResource` grants) pass
``start`` explicitly.

This module is dependency-free within the package so the low-level
simulation modules can import it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

#: Chrome trace_event phase codes (the subset we emit).
SPAN = "X"
INSTANT = "i"

#: Track-path separator; the first component is the resource class.
TRACK_SEP = "/"


@dataclass(frozen=True)
class TraceEvent:
    """One trace event: a complete span (``phase="X"``) or an instant
    (``phase="i"``) on a named track, timestamped in simulated cycles."""

    name: str
    track: str
    phase: str
    ts: float
    dur: float = 0.0
    category: str = ""
    args: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.phase not in (SPAN, INSTANT):
            raise ValueError(f"phase must be {SPAN!r} or {INSTANT!r}")
        if self.dur < 0:
            raise ValueError(f"negative duration {self.dur} on {self.name!r}")
        if self.ts < 0:
            raise ValueError(f"negative timestamp {self.ts} on {self.name!r}")

    @property
    def end(self) -> float:
        return self.ts + self.dur

    @property
    def resource_class(self) -> str:
        """First component of the track path (``dram``, ``accounting``...)."""
        return self.track.split(TRACK_SEP, 1)[0]


class Tracer:
    """Collects trace events, per-track cursors, and named counters.

    One tracer can observe several runs; :meth:`attach_run` records each
    completed :class:`~repro.arch.base.KernelRun` and lays its cycle
    ledger out as the authoritative ``accounting/*`` timeline.
    """

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._counters: Dict[str, float] = {}
        self._cursors: Dict[str, float] = {}
        self._runs: List[Dict[str, Any]] = []
        self._accounting_base = 0.0

    # -- recording ------------------------------------------------------

    def span(
        self,
        name: str,
        track: str,
        duration: float,
        *,
        start: Optional[float] = None,
        category: str = "",
        args: Optional[Mapping[str, Any]] = None,
    ) -> TraceEvent:
        """Record a complete span on ``track``.

        Without ``start`` the span is placed at the track cursor; either
        way the cursor advances to the span's end if that is later.
        """
        if start is None:
            start = self._cursors.get(track, 0.0)
        event = TraceEvent(
            name=name,
            track=track,
            phase=SPAN,
            ts=float(start),
            dur=float(duration),
            category=category,
            args=args,
        )
        self._events.append(event)
        if event.end > self._cursors.get(track, 0.0):
            self._cursors[track] = event.end
        return event

    def instant(
        self,
        name: str,
        track: str,
        *,
        ts: Optional[float] = None,
        category: str = "",
        args: Optional[Mapping[str, Any]] = None,
    ) -> TraceEvent:
        """Record an instantaneous event (default: at the track cursor)."""
        if ts is None:
            ts = self._cursors.get(track, 0.0)
        event = TraceEvent(
            name=name,
            track=track,
            phase=INSTANT,
            ts=float(ts),
            category=category,
            args=args,
        )
        self._events.append(event)
        return event

    def count(self, name: str, n: float = 1.0) -> None:
        """Accumulate ``n`` under the named counter."""
        self._counters[name] = self._counters.get(name, 0.0) + n

    def attach_run(self, result: Any, *, run_id: Optional[str] = None) -> None:
        """Record a completed kernel run and emit its accounting timeline.

        The run's :class:`~repro.sim.accounting.CycleBreakdown` — the
        authoritative per-category cycle ledger — is laid out end-to-end
        on ``accounting/<category>`` tracks, so every trace carries the
        ledger view alongside the fine-grained resource tracks and the
        two can be cross-checked (``invariant.trace.accounting``).
        Successive runs on one tracer tile successive windows.
        """
        base = self._accounting_base
        for category, start, end in result.breakdown.timeline(start=base):
            self.span(
                category,
                f"accounting{TRACK_SEP}{category}",
                end - start,
                start=start,
                category="accounting",
            )
        self._accounting_base = base + result.breakdown.total
        self._runs.append(
            {
                "kernel": result.kernel,
                "machine": result.machine,
                "run_id": run_id,
                "cycles": result.cycles,
                "window": (base, self._accounting_base),
                "functional_ok": bool(result.functional_ok),
            }
        )
        self.count("trace.runs")

    def clear(self) -> None:
        """Drop all events, counters, cursors, and recorded runs."""
        self._events.clear()
        self._counters.clear()
        self._cursors.clear()
        self._runs.clear()
        self._accounting_base = 0.0

    # -- reading --------------------------------------------------------

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    @property
    def n_events(self) -> int:
        return len(self._events)

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    @property
    def runs(self) -> Tuple[Dict[str, Any], ...]:
        return tuple(dict(r) for r in self._runs)

    def cursor(self, track: str) -> float:
        """The track's current cursor (0.0 if nothing recorded)."""
        return self._cursors.get(track, 0.0)

    def tracks(self) -> Tuple[str, ...]:
        """Track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.track, None)
        return tuple(seen)

    def busy_by_track(self) -> Dict[str, float]:
        """Sum of span durations per track (instants contribute 0)."""
        out: Dict[str, float] = {}
        for event in self._events:
            if event.phase == SPAN:
                out[event.track] = out.get(event.track, 0.0) + event.dur
        return out

    def busy_by_class(self) -> Dict[str, float]:
        """Sum of span durations per resource class (first track path
        component)."""
        out: Dict[str, float] = {}
        for event in self._events:
            if event.phase == SPAN:
                cls = event.resource_class
                out[cls] = out.get(cls, 0.0) + event.dur
        return out

    def segments(self, track: str) -> List[Tuple[float, float]]:
        """Merged, sorted busy intervals of ``track``'s spans.

        Overlapping and back-to-back spans coalesce, so the result is
        the track's busy/idle structure — what the utilization timeline
        renders and what ``utilization`` integrates.
        """
        spans = sorted(
            (e.ts, e.end)
            for e in self._events
            if e.phase == SPAN and e.track == track and e.dur > 0
        )
        merged: List[Tuple[float, float]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                if end > merged[-1][1]:
                    merged[-1] = (merged[-1][0], end)
            else:
                merged.append((start, end))
        return merged

    def utilization(self, track: str, horizon: Optional[float] = None) -> float:
        """Busy fraction of ``track`` over ``[0, horizon]`` (default: the
        latest event end over all tracks)."""
        if horizon is None:
            horizon = max((e.end for e in self._events), default=0.0)
        if horizon <= 0:
            return 0.0
        busy = sum(end - start for start, end in self.segments(track))
        return min(1.0, busy / horizon)

    def __repr__(self) -> str:
        return (
            f"Tracer({self.n_events} events, {len(self._counters)} counters,"
            f" {len(self._runs)} runs)"
        )


#: The process-wide active tracer (``None`` = tracing off).  Installed
#: and removed by :func:`tracing`; instrumentation sites read it through
#: :func:`active_tracer`.  Deliberately not thread-local: the simulations
#: are single-threaded, and worker *processes* of the sweep executor
#: start with tracing off (traced runs bypass the parallel path).
_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The currently installed tracer, or ``None`` when tracing is off."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) as the active tracer.

    Re-entrant: a nested context shadows the outer tracer and restores
    it on exit, and the previous tracer is always restored even when the
    body raises — no tracer state leaks between runs.
    """
    global _ACTIVE
    if tracer is None:
        tracer = Tracer()
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
