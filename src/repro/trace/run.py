"""Convenience driver: run one mapping under tracing.

``trace_run`` is what the ``repro trace`` CLI and the
``invariant.trace.accounting`` check call: it opens a :func:`tracing`
context, dispatches through the registry (which bypasses the
memoization cache while tracing is active — a cache hit would replay no
events — and attaches the finished run to the tracer), and returns both
the :class:`~repro.arch.base.KernelRun` and the populated
:class:`~repro.trace.tracer.Tracer`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.trace.tracer import Tracer, tracing


def trace_run(
    kernel: str,
    machine: str,
    *,
    tracer: Optional[Tracer] = None,
    **kwargs: Any,
) -> Tuple[Any, Tracer]:
    """Run ``kernel`` on ``machine`` with tracing on.

    Returns ``(run, tracer)``.  The run is bit-identical to an untraced
    run of the same arguments (tracing only observes); the tracer holds
    the event stream, counters, and the run's accounting timeline.
    """
    from repro.mappings import registry

    if tracer is None:
        tracer = Tracer()
    with tracing(tracer):
        result = registry.run(kernel, machine, **kwargs)
    return result, tracer
