"""Unified metrics registry: one namespaced read/snapshot/export API.

Counters grew up scattered: :mod:`repro.perf.timers` keeps wall-time
trees, :data:`repro.perf.cache.RUN_CACHE` keeps hit/miss/bypass tallies,
machine models keep :class:`repro.sim.stats.Counter` objects, and every
:class:`~repro.arch.base.KernelRun` carries a
:class:`~repro.sim.accounting.CycleBreakdown` ledger.  This module puts
them behind one registry: *sources* (zero-argument callables returning a
flat ``{key: value}`` mapping) register under a dotted namespace, and
:meth:`TelemetryRegistry.snapshot` reads every source into one
``{"namespace.key": value}`` dict — the shape the ``--perf`` output, the
metrics manifest, and the trace ``otherData`` block all consume.

The process-wide :data:`TELEMETRY` registry starts with these sources:

* ``perf.timers`` — the wall-time tree and counters (non-deterministic);
* ``perf.cache`` — memory-tier run-cache entries/hits/misses/bypasses;
* ``perf.diskcache`` — persistent-tier hits/misses/writes/evictions/
  corrupt-entry detections/quarantines/bypasses plus entry and byte
  counts;
* ``perf.index`` — the packed disk-cache index internals: manifest
  refreshes, torn records recovered, compactions, segment census, and
  probe-latency percentiles (see :mod:`repro.perf.index`);
* ``perf.pool`` — persistent worker-pool lifecycle: spawns, leases,
  reuses, discards, current width (see :mod:`repro.perf.poold`);
* ``resilience`` — the supervised executor's recovery ledger (retries,
  degradations, worker crashes, pool restarts, quarantines, broken
  locks — see :mod:`repro.resilience.stats`);
* ``scenario`` — pipeline composition and fuzzing counters (stages run
  per kernel, handoff words/cycles per level, scenarios generated and
  validated — see :mod:`repro.scenarios.stats`);
* ``trace`` — the active tracer's counters and event census (empty when
  tracing is off);
* ``obs`` — the flight recorder's event census (session id, events
  recorded by kind, write errors — empty when no recorder is active,
  see :mod:`repro.obs.ledger`);
* ``service`` — the job runtime's admission/lifecycle tallies
  (submitted, admitted, deduped, rejections by rung, completions,
  replays, drains — see :mod:`repro.service.stats`).

Sources are read lazily at snapshot time, so registration costs nothing
until someone asks, and a broken source reports its error under
``<namespace>.error`` instead of killing the snapshot.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Mapping, Tuple

from repro.trace.tracer import active_tracer

#: A telemetry source: () -> flat mapping of key -> scalar.
Source = Callable[[], Mapping[str, Any]]


class TelemetryRegistry:
    """Named telemetry sources with a namespaced snapshot API."""

    def __init__(self) -> None:
        self._sources: "OrderedDict[str, Source]" = OrderedDict()
        self._lock = threading.Lock()

    def register(
        self, namespace: str, source: Source, *, replace: bool = False
    ) -> None:
        """Register ``source`` under ``namespace`` (dotted, non-empty).

        Re-registering an existing namespace requires ``replace=True`` so
        two subsystems cannot silently fight over a name.
        """
        if not namespace or namespace.strip(".") != namespace:
            raise ValueError(f"invalid telemetry namespace {namespace!r}")
        with self._lock:
            if namespace in self._sources and not replace:
                raise ValueError(
                    f"telemetry namespace {namespace!r} already registered"
                )
            self._sources[namespace] = source

    def unregister(self, namespace: str) -> None:
        with self._lock:
            self._sources.pop(namespace, None)

    def namespaces(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._sources)

    @contextmanager
    def scoped(self, namespace: str, source: Source) -> Iterator[None]:
        """Register ``source`` for the duration of the context only.

        Exit removes exactly the source it installed: if the namespace
        was unregistered mid-scope, or replaced via
        ``register(..., replace=True)``, the other party's change is
        left alone instead of being clobbered by this context's exit.
        """
        self.register(namespace, source)
        try:
            yield
        finally:
            with self._lock:
                if self._sources.get(namespace) is source:
                    del self._sources[namespace]

    def snapshot(self) -> Dict[str, Any]:
        """All sources flattened to one ``{"namespace.key": value}`` dict.

        A source that raises contributes ``<namespace>.error`` with the
        exception text; telemetry must never take down the run it
        observes.
        """
        with self._lock:
            sources = list(self._sources.items())
        out: Dict[str, Any] = {}
        for namespace, source in sources:
            try:
                values = source()
            except Exception as exc:  # noqa: BLE001 - observation only
                out[f"{namespace}.error"] = f"{type(exc).__name__}: {exc}"
                continue
            for key, value in values.items():
                out[f"{namespace}.{key}"] = value
        return out

    def read(self, name: str) -> Any:
        """One metric by its full dotted name (raises ``KeyError``)."""
        return self.snapshot()[name]

    def export_json(self, indent: int = 2) -> str:
        """The snapshot as stable (sorted-key) JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Aligned ``name value`` lines, sorted, for the ``--perf`` view.

        Total-emptiness is reported precisely: an empty *registry* reads
        differently from registered sources that currently have nothing
        to say (every source returned an empty mapping).
        """
        snap = self.snapshot()
        if not snap:
            if not self.namespaces():
                return "telemetry: (no sources registered)"
            return "telemetry: (no values)"
        width = max(len(name) for name in snap)
        lines = ["telemetry:"]
        for name in sorted(snap):
            lines.append(f"  {name:<{width}s}  {snap[name]}")
        return "\n".join(lines)


def counter_source(counter: Any) -> Source:
    """Adapt a :class:`repro.sim.stats.Counter` into a telemetry source
    (per-label tallies plus the total)."""

    def read() -> Dict[str, Any]:
        values = {str(k): v for k, v in counter.as_dict().items()}
        values["total"] = counter.total
        return values

    return read


def breakdown_source(breakdown: Any) -> Source:
    """Adapt a :class:`repro.sim.accounting.CycleBreakdown` ledger into a
    telemetry source (per-category cycles plus the total)."""

    def read() -> Dict[str, Any]:
        values = {str(k): v for k, v in breakdown.items()}
        values["total"] = breakdown.total
        return values

    return read


def _timers_source() -> Dict[str, Any]:
    from repro.perf import timers

    snap = timers.snapshot()
    out: Dict[str, Any] = {}
    for path, entry in snap["timings"].items():
        out[f"timings.{path}.seconds"] = entry["seconds"]
        out[f"timings.{path}.calls"] = entry["calls"]
    for name, value in snap["counters"].items():
        out[f"counters.{name}"] = value
    return out


def _run_cache_source() -> Dict[str, Any]:
    from repro.perf.cache import RUN_CACHE

    return dict(RUN_CACHE.stats())


def _disk_cache_source() -> Dict[str, Any]:
    from repro.perf.diskcache import DISK_CACHE

    return dict(DISK_CACHE.stats())


def _tensor_source() -> Dict[str, Any]:
    from repro.perf.tensorsweep import TENSOR_STATS

    return dict(TENSOR_STATS.stats())


def _pool_source() -> Dict[str, Any]:
    from repro.perf import poold

    return dict(poold.pool_stats())


def _index_source() -> Dict[str, Any]:
    from repro.perf.diskcache import DISK_CACHE

    stats = getattr(DISK_CACHE, "index_stats", None)
    return dict(stats()) if stats is not None else {}


def _resilience_source() -> Dict[str, Any]:
    from repro.resilience.stats import RESILIENCE

    return dict(RESILIENCE.snapshot())


def _scenario_source() -> Dict[str, Any]:
    from repro.scenarios.stats import SCENARIO_STATS

    return dict(SCENARIO_STATS.snapshot())


def _trace_source() -> Dict[str, Any]:
    tracer = active_tracer()
    if tracer is None:
        return {}
    out: Dict[str, Any] = dict(tracer.counters)
    out["events"] = tracer.n_events
    return out


def _obs_source() -> Dict[str, Any]:
    from repro.obs.ledger import _obs_telemetry_source

    return _obs_telemetry_source()


def _service_source() -> Dict[str, Any]:
    from repro.service.stats import SERVICE_STATS

    return dict(SERVICE_STATS.snapshot())


#: The process-wide registry with the default sources installed.
TELEMETRY = TelemetryRegistry()
TELEMETRY.register("perf.timers", _timers_source)
TELEMETRY.register("perf.cache", _run_cache_source)
TELEMETRY.register("perf.diskcache", _disk_cache_source)
TELEMETRY.register("perf.index", _index_source)
TELEMETRY.register("perf.pool", _pool_source)
TELEMETRY.register("perf.tensor", _tensor_source)
TELEMETRY.register("resilience", _resilience_source)
TELEMETRY.register("scenario", _scenario_source)
TELEMETRY.register("trace", _trace_source)
TELEMETRY.register("obs", _obs_source)
TELEMETRY.register("service", _service_source)
