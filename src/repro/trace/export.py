"""Trace exporters: Chrome ``trace_event`` JSON, SVG timelines, JSONL.

Three renderings of one :class:`~repro.trace.tracer.Tracer`:

* :func:`to_chrome` — the Chrome/Perfetto ``trace_event`` JSON object
  format.  Load the file at https://ui.perfetto.dev or in
  ``chrome://tracing``; each track becomes a named thread, spans are
  complete (``"ph": "X"``) events, and timestamps are **simulated
  cycles** (the viewer's µs unit reads as cycles).
* :func:`timeline_svg` — a per-resource busy/idle Gantt rendered by
  :func:`repro.eval.svg.utilization_timeline_svg`, one row per track.
* :func:`metrics_manifest_lines` — per-run JSON-lines records (run id,
  config hash, cycle totals, breakdown, op census, scalar metrics) that
  are deterministic for a given model version, so ``BENCH_PR*.json``
  files diff cleanly across PRs.

The chrome document is self-verifying: :func:`chrome_busy_by_track`
recomputes per-track busy sums from the *exported* events (resolving
thread names through the metadata records), which is how the
``invariant.trace.accounting`` check proves the export pipeline did not
drop or distort spans.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.trace.tracer import INSTANT, SPAN, Tracer

MANIFEST_SCHEMA = "repro-metrics/1"


def to_chrome(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's events as a Chrome ``trace_event`` JSON object.

    Tracks map to threads of one process: a ``thread_name`` metadata
    record per track, then the events with integer ``tid``.  Counters,
    run records, and the clock convention travel in ``otherData``.
    """
    tids: Dict[str, int] = {
        track: i for i, track in enumerate(tracer.tracks())
    }
    events: List[Dict[str, Any]] = []
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    for event in tracer.events:
        record: Dict[str, Any] = {
            "ph": event.phase,
            "pid": 0,
            "tid": tids[event.track],
            "name": event.name,
            "cat": event.category or event.resource_class,
            "ts": event.ts,
        }
        if event.phase == SPAN:
            record["dur"] = event.dur
        elif event.phase == INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = dict(event.args)
        events.append(record)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro trace",
            "clock": "simulated cycles (1 viewer-us = 1 cycle)",
            "runs": list(tracer.runs),
            "counters": dict(sorted(tracer.counters.items())),
        },
    }


def chrome_track_names(document: Mapping[str, Any]) -> Dict[int, str]:
    """``tid -> track name`` from a chrome document's metadata records."""
    names: Dict[int, str] = {}
    for event in document["traceEvents"]:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[int(event["tid"])] = str(event["args"]["name"])
    return names


def chrome_busy_by_track(document: Mapping[str, Any]) -> Dict[str, float]:
    """Per-track span-duration sums recomputed from an *exported* chrome
    document (not from the tracer), validating the export path."""
    names = chrome_track_names(document)
    busy: Dict[str, float] = {}
    for event in document["traceEvents"]:
        if event.get("ph") == SPAN:
            track = names.get(int(event["tid"]), f"tid{event['tid']}")
            busy[track] = busy.get(track, 0.0) + float(event["dur"])
    return busy


def utilization_timelines(
    tracer: Tracer,
) -> "OrderedDict[str, List[Tuple[float, float]]]":
    """Merged busy segments per track, accounting tracks first.

    The ordering matches how the SVG stacks its rows: the ledger view on
    top, then the fine-grained resource tracks in appearance order.
    """
    tracks = tracer.tracks()
    ordered = [t for t in tracks if t.startswith("accounting/")] + [
        t for t in tracks if not t.startswith("accounting/")
    ]
    out: "OrderedDict[str, List[Tuple[float, float]]]" = OrderedDict()
    for track in ordered:
        segments = tracer.segments(track)
        if segments:
            out[track] = segments
    return out


def timeline_svg(tracer: Tracer, title: Optional[str] = None) -> str:
    """The per-resource busy/idle timeline as a self-contained SVG."""
    from repro.errors import ExperimentError
    from repro.eval.svg import utilization_timeline_svg

    timelines = utilization_timelines(tracer)
    if not timelines:
        raise ExperimentError("trace holds no spans to render")
    if title is None:
        runs = tracer.runs
        if runs:
            title = "trace timeline: " + ", ".join(
                f"{r['kernel']}/{r['machine']}" for r in runs
            )
        else:
            title = "trace timeline"
    total = max(end for segs in timelines.values() for _, end in segs)
    return utilization_timeline_svg(title, timelines, total)


def manifest_record(
    run: Any,
    *,
    config_hash: Optional[str] = None,
    counters: Optional[Mapping[str, float]] = None,
) -> Dict[str, Any]:
    """One JSON-safe metrics-manifest record for a kernel run.

    Everything in the record is deterministic for a given model version
    (no wall times), so manifests from different PRs diff cleanly.
    ``counters`` optionally attaches a traced run's counter snapshot.
    """
    from repro.eval.export import kernel_run_record

    record: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "run_id": config_hash[:12] if config_hash else None,
        "config_hash": config_hash,
    }
    record.update(kernel_run_record(run))
    if counters is not None:
        record["trace_counters"] = dict(sorted(counters.items()))
    return record


def metrics_manifest_lines(
    results: Mapping[Tuple[str, str], Any],
    workloads: Optional[Mapping[str, Any]] = None,
) -> List[str]:
    """One manifest line per (kernel, machine) run, sorted by pair.

    ``workloads`` must be the same overrides the sweep ran with so the
    config hashes describe what actually executed.
    """
    from repro.perf.cache import cache_key

    lines = []
    for (kernel, machine), run in sorted(results.items()):
        kwargs: Dict[str, Any] = {}
        if workloads and kernel in workloads:
            kwargs["workload"] = workloads[kernel]
        record = manifest_record(
            run, config_hash=cache_key(kernel, machine, kwargs)
        )
        lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_metrics_manifest(
    path: Union[str, Path],
    results: Mapping[Tuple[str, str], Any],
    workloads: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write the JSON-lines metrics manifest for a sweep (atomically);
    returns the path."""
    from repro.ioutil import atomic_write_text

    path = Path(path)
    atomic_write_text(
        path, "\n".join(metrics_manifest_lines(results, workloads)) + "\n"
    )
    return path


def write_chrome(path: Union[str, Path], tracer: Tracer) -> Path:
    """Write the chrome trace JSON for ``tracer`` (atomically); returns
    the path."""
    from repro.ioutil import atomic_write_text

    path = Path(path)
    atomic_write_text(path, json.dumps(to_chrome(tracer), indent=1) + "\n")
    return path
