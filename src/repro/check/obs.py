"""Observability invariants: the ledger must agree with the counters.

The flight recorder (:mod:`repro.obs.ledger`) is *derived* evidence: it
claims to witness what the planner, the supervisor, and the caches did.
Derived evidence drifts — an instrumentation site gets moved, a payload
field is renamed, a counter is bumped on a path the ledger no longer
sees — so the fast tier re-proves the reconciliation contract on every
run with a controlled experiment under a scratch in-memory recorder:

* ``invariant.obs.seq`` — event sequence numbers are gapless and
  monotonic from 0 (a gap is a lost event, a repeat a duplicated one);
* ``invariant.obs.plan-conservation`` — the ``sweep.plan`` payload
  partitions its requests exactly:
  ``duplicates + memory_hits + disk_hits + executed == requests``;
* ``invariant.obs.counter-reconcile`` — the same payload equals the
  deltas of the ``planner.*`` perf-timer counters over the sweep, field
  by field (the ledger and TELEMETRY must tell one story);
* ``invariant.obs.dispatch-reconcile`` — one ``planner.dispatch`` event
  per dispatch unit, and their ``cells`` sum to ``executed``;
* ``invariant.obs.supervisor-mirror`` — a supervisor incident's ledger
  payload is byte-for-byte (sorted-key JSON) the payload the resilience
  ledger keeps, the contract the chaos harness relies on.
"""

from __future__ import annotations

import json
from typing import Any, List, Mapping, Optional

from repro.check.report import FAIL, PASS, CheckResult

#: sweep.plan payload fields reconciled against the planner counters.
PLAN_FIELDS = (
    "requests", "duplicates", "memory_hits", "disk_hits", "executed",
    "units",
)


def _counter_delta(
    before: Mapping[str, Any], after: Mapping[str, Any], name: str
) -> int:
    return int(after.get(name, 0)) - int(before.get(name, 0))


def obs_checks(
    workloads: Optional[Mapping[str, Any]] = None,
) -> List[CheckResult]:
    """Run the ledger-vs-counters reconciliation experiment."""
    from repro.obs.ledger import recording
    from repro.perf import timers
    from repro.perf.planner import execute_requests
    from repro.resilience.stats import RESILIENCE

    if workloads is None:
        from repro.kernels.workloads import small_corner_turn, small_cslc

        workloads = {
            "corner_turn": small_corner_turn(),
            "cslc": small_cslc(),
        }
    results: List[CheckResult] = []

    # A tiny sweep with a deliberate duplicate: two distinct cells plus
    # a repeat of the first, run serially under a scratch recorder.
    requests = [
        ("corner_turn", "viram", {"workload": workloads["corner_turn"]}),
        ("cslc", "viram", {"workload": workloads["cslc"]}),
        ("corner_turn", "viram", {"workload": workloads["corner_turn"]}),
    ]
    before = timers.snapshot()["counters"]
    incidents_before = len(RESILIENCE.incidents())
    with recording() as recorder:
        execute_requests(requests, jobs=1)
        RESILIENCE.note_degradation("obs.invariant probe")
    after = timers.snapshot()["counters"]

    # -- seq: gapless, monotonic from 0 -------------------------------
    seqs = [event["seq"] for event in recorder.events]
    if seqs == list(range(recorder.n_events)):
        results.append(
            CheckResult(
                "invariant.obs.seq", PASS,
                f"{recorder.n_events} events, gapless",
            )
        )
    else:
        results.append(
            CheckResult(
                "invariant.obs.seq", FAIL,
                f"sequence numbers not gapless from 0: {seqs[:10]}",
            )
        )

    # -- sweep.plan: exactly one, and it partitions the requests ------
    plans = recorder.events_of("sweep.plan")
    if len(plans) != 1:
        results.append(
            CheckResult(
                "invariant.obs.plan-conservation", FAIL,
                f"expected exactly 1 sweep.plan event, saw {len(plans)}",
            )
        )
        return results
    plan = plans[0]["payload"]
    served = (
        plan["duplicates"] + plan["memory_hits"] + plan["disk_hits"]
        + plan["executed"]
    )
    if served == plan["requests"] == len(requests):
        results.append(
            CheckResult(
                "invariant.obs.plan-conservation", PASS,
                f"{plan['requests']} requests = {plan['duplicates']} dup "
                f"+ {plan['memory_hits']} mem + {plan['disk_hits']} disk "
                f"+ {plan['executed']} executed",
            )
        )
    else:
        results.append(
            CheckResult(
                "invariant.obs.plan-conservation", FAIL,
                f"requests={plan['requests']} but dup+mem+disk+executed"
                f"={served} (submitted {len(requests)})",
            )
        )

    # -- sweep.plan vs the planner.* counter deltas -------------------
    mismatches = []
    for field in PLAN_FIELDS:
        delta = _counter_delta(before, after, f"planner.{field}")
        if delta != plan[field]:
            mismatches.append(
                f"{field}: ledger={plan[field]} counters={delta}"
            )
    results.append(
        CheckResult(
            "invariant.obs.counter-reconcile",
            PASS if not mismatches else FAIL,
            "" if not mismatches else (
                "ledger disagrees with perf.timers.counters.planner.*: "
                + "; ".join(mismatches)
            ),
        )
    )

    # -- planner.dispatch: one per unit, cells sum to executed --------
    dispatches = recorder.events_of("planner.dispatch")
    cells = sum(e["payload"]["cells"] for e in dispatches)
    if len(dispatches) == plan["units"] and cells == plan["executed"]:
        results.append(
            CheckResult(
                "invariant.obs.dispatch-reconcile", PASS,
                f"{len(dispatches)} dispatch events covering {cells} cells",
            )
        )
    else:
        results.append(
            CheckResult(
                "invariant.obs.dispatch-reconcile", FAIL,
                f"plan says units={plan['units']} executed="
                f"{plan['executed']}, dispatch events={len(dispatches)} "
                f"covering {cells} cells",
            )
        )

    # -- supervisor incidents mirror byte-for-byte --------------------
    incidents = RESILIENCE.incidents()[incidents_before:]
    mirrored = recorder.events_of("supervisor")
    if len(incidents) != len(mirrored):
        results.append(
            CheckResult(
                "invariant.obs.supervisor-mirror", FAIL,
                f"{len(incidents)} resilience incident(s) vs "
                f"{len(mirrored)} ledger supervisor event(s)",
            )
        )
        return results
    diffs = []
    for incident, event in zip(incidents, mirrored):
        want = json.dumps(incident["payload"], sort_keys=True)
        got = json.dumps(event["payload"], sort_keys=True)
        if want != got:
            diffs.append(f"{incident['kind']}: {want} != {got}")
        kind = f"supervisor.{incident['kind']}"
        if event["kind"] != kind:
            diffs.append(f"kind {event['kind']!r} != {kind!r}")
    results.append(
        CheckResult(
            "invariant.obs.supervisor-mirror",
            PASS if not diffs else FAIL,
            (
                f"{len(incidents)} incident payload(s) identical"
                if not diffs
                else "; ".join(diffs[:3])
            ),
        )
    )
    return results
