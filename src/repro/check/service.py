"""Service invariants: the job runtime re-proven on every fast tier.

The service's durability story rests on three claims — the journal is
an honest write-ahead history, the job state machine admits no illegal
life, and deduplication conserves work (N identical requests cost one
computation).  Like the obs reconciliation checks, these are *derived*
properties that drift silently when an instrumentation site moves, so
the fast tier re-proves them with a controlled experiment against a
scratch runtime (temp service root, counting stub executor — no HTTP,
no real kernels, milliseconds):

* ``invariant.service.journal`` — a full job lifecycle leaves a
  parseable journal with a gapless ``seq`` from 0 and schema-complete
  records, and a torn tail is healed on reopen (quarantined, not
  trusted) with the surviving records still valid;
* ``invariant.service.state-machine`` — the legal-transition table has
  the shape the durability argument needs (birth only as PENDING,
  terminal states closed, the only backward edge RUNNING -> PENDING),
  the runtime refuses illegal transitions, and the experiment's
  journalled histories all validate against the machine;
* ``invariant.service.dedup`` — N identical submissions collapse to
  one admission and one executor invocation, visible in ``service.*``
  telemetry (``deduped == N - 1``);
* ``invariant.service.replay`` — a job abandoned RUNNING (the crash
  shape) is re-queued by the next runtime on the same root, completes,
  and its result bytes are identical to an uninterrupted run's.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.check.report import FAIL, PASS, CheckResult

__all__ = ["service_checks"]


def _stub_executor(calls: List[Dict[str, Any]]):
    """A deterministic executor that counts its invocations."""

    def execute(kind: str, params: Mapping[str, Any],
                jobs: Optional[int] = None) -> Dict[str, Any]:
        calls.append({"kind": kind, "params": dict(params)})
        return {"kind": kind, "params": dict(params), "status": "stub"}

    return execute


def service_checks(
    workloads: Optional[Mapping[str, Any]] = None,
) -> List[CheckResult]:
    """Run the scratch-runtime experiment; returns one result per
    invariant.  ``workloads`` is accepted for signature parity with the
    other check batteries but unused — the experiment runs on a stub
    executor precisely so the fast tier stays fast."""
    import tempfile
    from pathlib import Path

    from repro.errors import ServiceError
    from repro.service import jobs as jobmod
    from repro.service.journal import (
        JobJournal,
        read_journal,
        validate_records,
    )
    from repro.service.runtime import JobRuntime, ServiceConfig
    from repro.service.stats import SERVICE_STATS

    results: List[CheckResult] = []
    calls: List[Dict[str, Any]] = []
    stats_before = SERVICE_STATS.snapshot()

    with tempfile.TemporaryDirectory(prefix="repro-svc-check-") as tmp:
        root = Path(tmp) / "svc"
        config = ServiceConfig(
            root=root, workers=0, executor=_stub_executor(calls)
        )
        runtime = JobRuntime(config)

        # The experiment: three identical submissions (dedup), one
        # distinct (so the journal shows two lifecycles), all executed.
        params = {"kernel": "corner_turn", "machine": "viram"}
        submissions = [runtime.submit("run", params) for _ in range(3)]
        other = runtime.submit("run", {"kernel": "cslc", "machine": "raw"})
        runtime.run_pending()

        # -- dedup conservation ---------------------------------------
        outcomes = [s.outcome for s in submissions]
        stats_after = SERVICE_STATS.snapshot()
        deduped = stats_after["deduped"] - stats_before["deduped"]
        admitted = stats_after["admitted"] - stats_before["admitted"]
        same_job = len({s.job.id for s in submissions}) == 1
        executions = sum(
            1 for c in calls if c["params"] == params
        )
        if (
            outcomes == ["admitted", "deduped", "deduped"]
            and same_job
            and deduped == 2
            and admitted == 2  # the identical trio once + `other`
            and executions == 1
        ):
            results.append(
                CheckResult(
                    "invariant.service.dedup", PASS,
                    "3 identical requests -> 1 admission, 1 execution "
                    "(service.deduped +2)",
                )
            )
        else:
            results.append(
                CheckResult(
                    "invariant.service.dedup", FAIL,
                    f"outcomes={outcomes} same_job={same_job} "
                    f"deduped+={deduped} admitted+={admitted} "
                    f"executions={executions} — expected 1 admission and "
                    "1 execution for 3 identical requests",
                )
            )

        # -- journal schema/seq, with torn-tail healing ---------------
        records, corrupt = read_journal(runtime.journal.path)
        problems = validate_records(records)
        if corrupt:
            problems.append(f"{len(corrupt)} unparseable line(s)")
        journal_len = len(records)
        # Tear the tail the way a crash mid-append would, then reopen.
        with open(runtime.journal.path, "ab") as fh:
            fh.write(b'{"schema": 1, "seq": 9999, "job": "tor')
        healed = JobJournal(runtime.journal.path)
        records2, corrupt2 = read_journal(healed.path)
        quarantine = healed.path.with_suffix(".quarantine")
        if (
            not problems
            and healed.torn_tails_healed == 1
            and not corrupt2
            and len(records2) == journal_len
            and not validate_records(records2)
            and quarantine.is_file()
        ):
            results.append(
                CheckResult(
                    "invariant.service.journal", PASS,
                    f"{journal_len} records, seq gapless; torn tail "
                    "quarantined and healed on reopen",
                )
            )
        else:
            results.append(
                CheckResult(
                    "invariant.service.journal", FAIL,
                    f"problems={problems[:3]} healed="
                    f"{healed.torn_tails_healed} corrupt_after="
                    f"{len(corrupt2)} records {journal_len}->"
                    f"{len(records2)} quarantine={quarantine.is_file()}",
                )
            )

        # -- state machine --------------------------------------------
        shape_errors: List[str] = []
        for state in jobmod.TERMINAL_STATES:
            if jobmod.LEGAL_TRANSITIONS.get(state):
                shape_errors.append(f"terminal {state} has exits")
        if jobmod.LEGAL_TRANSITIONS.get(None) != (jobmod.PENDING,):
            shape_errors.append("birth state is not exactly PENDING")
        backward = [
            (cur, new)
            for cur, nexts in jobmod.LEGAL_TRANSITIONS.items()
            for new in nexts
            if cur is not None
            and jobmod.STATES.index(new) < jobmod.STATES.index(cur)
        ]
        if backward != [(jobmod.RUNNING, jobmod.PENDING)]:
            shape_errors.append(
                f"backward edges {backward} != [RUNNING -> PENDING]"
            )
        done_job = other.job
        try:
            runtime._transition(done_job, jobmod.RUNNING)
            shape_errors.append(
                "runtime accepted DONE -> RUNNING (terminal state reopened)"
            )
        except ServiceError:
            pass
        results.append(
            CheckResult(
                "invariant.service.state-machine",
                PASS if not shape_errors else FAIL,
                (
                    "transition table shaped for durability; illegal "
                    "transition refused"
                    if not shape_errors
                    else "; ".join(shape_errors[:3])
                ),
            )
        )

        # -- crash replay converges -----------------------------------
        crash_params = {"kernel": "beam_steering", "machine": "imagine"}
        crashed = runtime.submit("run", crash_params)
        # Take the job to RUNNING and "crash": no DONE record, no result.
        runtime._transition(crashed.job, jobmod.RUNNING)
        reborn = JobRuntime(
            ServiceConfig(root=root, workers=0,
                          executor=_stub_executor(calls))
        )
        reborn.run_pending()
        replayed_job = reborn.get(crashed.job.id)
        replayed_text = reborn.result_text(crashed.job.id)
        # The reference: the same request on a pristine root.
        fresh = JobRuntime(
            ServiceConfig(root=Path(tmp) / "fresh", workers=0,
                          executor=_stub_executor(calls))
        )
        ref = fresh.submit("run", crash_params)
        fresh.run_pending()
        ref_text = fresh.result_text(ref.job.id)
        if (
            reborn.replayed_jobs == 1
            and replayed_job is not None
            and replayed_job.state == jobmod.DONE
            and replayed_job.replays == 1
            and replayed_text is not None
            and replayed_text == ref_text
        ):
            results.append(
                CheckResult(
                    "invariant.service.replay", PASS,
                    "RUNNING-at-crash job re-queued, completed, result "
                    "byte-identical to an uninterrupted run",
                )
            )
        else:
            results.append(
                CheckResult(
                    "invariant.service.replay", FAIL,
                    f"replayed={reborn.replayed_jobs} state="
                    f"{getattr(replayed_job, 'state', None)} replays="
                    f"{getattr(replayed_job, 'replays', None)} "
                    f"bytes_equal={replayed_text == ref_text}",
                )
            )
    return results
