"""Packed-index invariants (``invariant.index.*``) for the fast tier.

The packed disk-cache layout (:mod:`repro.perf.index`) concentrates
every persisted run behind one manifest; a bug there corrupts the whole
store at once instead of one file.  These checks exercise the layout's
load-bearing guarantees against a *scratch* store in a temporary
directory — hermetic, deterministic, and independent of whether the
user's disk tier is enabled — plus one digest sweep of the live store:

* ``invariant.index.roundtrip`` — ``put_many`` → ``get_many`` over a
  fresh store returns byte-equal values, the digest sweep is clean, and
  the index census agrees with what was written;
* ``invariant.index.reopen`` — a *second* handle on the same directory
  (a fresh process, as far as the index code can tell) serves the same
  entries purely from the manifest;
* ``invariant.index.torn-tail`` — a manifest with a torn final record
  (crash mid-append) still serves every complete entry, and the next
  locked writer truncates and quarantines the torn bytes;
* ``invariant.index.tombstone`` — an evicted key stays evicted across
  reopen (the append-only manifest's last-record-wins rule);
* ``invariant.index.live-verify`` — the user's live store passes the
  digest sweep.  When the tier is off the sweep runs against the
  scratch store's final state instead — the same fallback the
  disk-tier oracle uses — so ``repro report`` stdout stays
  byte-identical regardless of cache configuration.
"""

from __future__ import annotations

from typing import List

from repro.check.report import FAIL, PASS, CheckResult

__all__ = ["index_checks"]

#: Deterministic scratch payloads: structure-bearing, pickle-stable.
_PAYLOADS = [
    (f"indexcanary{i:02d}", {"cell": i, "values": [float(i)] * 8})
    for i in range(6)
]


def _result(name: str, ok: bool, detail: str) -> CheckResult:
    return CheckResult(name, PASS if ok else FAIL, "" if ok else detail)


def index_checks() -> List[CheckResult]:
    """The ``invariant.index.*`` rows for ``repro check --fast``."""
    import tempfile

    from repro.perf.diskcache import DISK_CACHE
    from repro.perf.index import PackedDiskCache

    results: List[CheckResult] = []
    with tempfile.TemporaryDirectory(prefix="repro-check-index-") as tmp:
        store = PackedDiskCache(tmp, respect_env=False)
        written = store.put_many(_PAYLOADS)
        served = store.get_many([key for key, _ in _PAYLOADS])
        roundtrip_ok = (
            written == len(_PAYLOADS)
            and all(served.get(k) == v for k, v in _PAYLOADS)
            and not store.verify()
            and len(store) == len(_PAYLOADS)
        )
        results.append(
            _result(
                "invariant.index.roundtrip",
                roundtrip_ok,
                f"packed store round-trip broke: wrote {written}/"
                f"{len(_PAYLOADS)}, served {len(served)}, "
                f"census {len(store)}",
            )
        )

        # A second handle = a fresh process: no in-memory view to lean
        # on, everything must come back from manifest + segments.
        reopened = PackedDiskCache(tmp, respect_env=False)
        again = reopened.get_many([key for key, _ in _PAYLOADS])
        results.append(
            _result(
                "invariant.index.reopen",
                all(again.get(k) == v for k, v in _PAYLOADS),
                f"reopened store served {len(again)}/{len(_PAYLOADS)} "
                "entries from the manifest",
            )
        )

        # Tombstones must win over the records they shadow, including
        # across reopen (last record wins on replay).
        victim = _PAYLOADS[0][0]
        store.evict(victim)
        shadowed = PackedDiskCache(tmp, respect_env=False)
        results.append(
            _result(
                "invariant.index.tombstone",
                store.lookup(victim) is None
                and shadowed.lookup(victim) is None
                and shadowed.lookup(_PAYLOADS[1][0]) == _PAYLOADS[1][1],
                "evicted key resurfaced after manifest replay",
            )
        )

        # Crash mid-append: tear the manifest tail, then require a
        # reader to serve every complete record and the next locked
        # writer to truncate + quarantine the torn bytes.
        manifest = store.stamp_dir() / "index.manifest"
        with open(manifest, "ab") as fh:
            fh.write(b'{"k": "torn-entry", "s": 0, "o": 0, "n": 99')
        torn = PackedDiskCache(tmp, respect_env=False)
        before = torn.torn_records
        survivors = torn.get_many([key for key, _ in _PAYLOADS[1:]])
        torn.put_many([("post-tear", {"healed": True})])
        healed = PackedDiskCache(tmp, respect_env=False)
        results.append(
            _result(
                "invariant.index.torn-tail",
                all(survivors.get(k) == v for k, v in _PAYLOADS[1:])
                and torn.torn_records > before
                and healed.lookup("post-tear") == {"healed": True}
                and healed.lookup("torn-entry") is None,
                f"torn manifest tail mishandled: {len(survivors)}/"
                f"{len(_PAYLOADS) - 1} survivors, "
                f"{torn.torn_records - before} torn records recovered",
            )
        )

        # Tier off → sweep the scratch store's final state through the
        # identical verify path, so the row (and the report bytes) do
        # not depend on cache configuration.
        bad = DISK_CACHE.verify() if DISK_CACHE.enabled else healed.verify()
    results.append(
        _result(
            "invariant.index.live-verify",
            not bad,
            f"{len(bad)} live entries failed digest verification: "
            + ", ".join(k[:12] for k in bad[:5]),
        )
    )
    return results
