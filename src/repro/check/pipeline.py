"""Pipeline composition invariants (``invariant.pipeline.*``).

Three claims the scenario layer makes, each re-proved on every fast
check tier run and on every fuzzed scenario:

* **additivity** — a composed pipeline's total is exactly the
  left-to-right interleaved sum of its stage cycles and handoff
  cycles, with every handoff independently re-priced from the
  machine's handoff table (:mod:`repro.scenarios.handoff`).  No cost
  appears in the total that is not attributable to a stage or a
  handoff, and none is dropped.
* **footprint conservation** — each handoff moves exactly the
  producer's declared output words, and its price never beats the
  machine's best port (one pass at the fastest level's rate): data
  cannot shrink, teleport, or be double-counted between stages.
* **batch-vs-serial bit-identity** — a scenario population executed
  through the planner (where stages of different scenarios fuse into
  tensor batches) yields runs bit-identical to cold per-stage
  ``registry.run`` calls, extending the ``invariant.tensor.*``
  guarantee from isolated cells to composed pipelines.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from repro.check.oracles import diff_runs
from repro.check.report import FAIL, PASS, CheckResult

#: Grouped-sum reassociation tolerance: stage-sum + handoff-sum may
#: differ from the interleaved total only by float reassociation.
_GROUP_RTOL = 1e-12

#: Calibration factors for the batch-vs-serial differential — off-grid
#: values (never 1.0) so neither leg can be answered from a warm cache,
#: and three cells so the planner genuinely forms a tensor batch.
_BATCH_FACTORS = (0.93, 1.07, 1.21)


def validate_pipeline_run(prun) -> List[CheckResult]:
    """Additivity + footprint conservation for one executed scenario."""
    from repro.scenarios.handoff import floor_cycles, plan_handoff

    machine = prun.scenario.machine
    failures: List[str] = []

    # Additivity: recompute the interleaved total from scratch, with
    # every handoff re-priced independently of the stored one.
    recomputed = 0.0
    for result in prun.stages[:-1]:
        recomputed += result.run.cycles
        fresh = plan_handoff(machine, result.spec.output_words())
        stored = result.handoff
        if stored is None:
            failures.append(
                f"stage {result.spec.kernel} is missing its handoff"
            )
            continue
        if (fresh.level, fresh.words, fresh.cycles) != (
            stored.level,
            stored.words,
            stored.cycles,
        ):
            failures.append(
                f"stage {result.spec.kernel} handoff drifted: stored "
                f"{stored.words} words via {stored.level} "
                f"({stored.cycles} cycles), recomputed {fresh.words} via "
                f"{fresh.level} ({fresh.cycles})"
            )
        recomputed += stored.cycles
    recomputed += prun.stages[-1].run.cycles
    if prun.stages[-1].handoff is not None:
        failures.append("last stage must not carry a handoff")
    if recomputed != prun.total_cycles:
        failures.append(
            f"composed total {prun.total_cycles!r} != interleaved "
            f"stage+handoff sum {recomputed!r}"
        )
    grouped = prun.stage_cycles + prun.handoff_cycles
    if abs(grouped - prun.total_cycles) > _GROUP_RTOL * abs(grouped):
        failures.append(
            f"grouped sums {grouped!r} diverge from total "
            f"{prun.total_cycles!r} beyond reassociation"
        )
    results = [
        CheckResult(
            f"invariant.pipeline.additivity.{machine}",
            PASS if not failures else FAIL,
            "" if not failures else (
                f"scenario {prun.scenario_id}: " + "; ".join(failures[:4])
            ),
        )
    ]

    # Footprint conservation across every handoff.
    failures = []
    for result in prun.stages[:-1]:
        stored = result.handoff
        if stored is None:
            continue  # already reported by additivity
        declared = result.spec.output_words()
        if stored.words != declared:
            failures.append(
                f"{result.spec.kernel} hands off {stored.words} words "
                f"but declares {declared} output words"
            )
        if stored.words <= 0:
            failures.append(
                f"{result.spec.kernel} handoff moved {stored.words} words"
            )
        floor = floor_cycles(machine, stored.words)
        if stored.cycles < floor:
            failures.append(
                f"{result.spec.kernel} handoff priced {stored.cycles} "
                f"cycles, below the {floor}-cycle best-port floor"
            )
    results.append(
        CheckResult(
            f"invariant.pipeline.footprint.{machine}",
            PASS if not failures else FAIL,
            "" if not failures else (
                f"scenario {prun.scenario_id}: " + "; ".join(failures[:4])
            ),
        )
    )
    return results


def _batch_vs_serial(workloads: Optional[Mapping[str, Any]]) -> CheckResult:
    """Planner-batched scenario execution vs cold per-stage runs."""
    from repro.eval.sensitivity import perturbed_calibration
    from repro.mappings import registry
    from repro.scenarios.model import scenario_for_workloads
    from repro.scenarios.pipeline import run_scenarios

    name = "invariant.pipeline.batch-vs-serial"
    if workloads is None:
        # Like the tensor oracle: both legs cold-simulate every cell on
        # every fast-tier run, so default to the small workload set.
        from repro.kernels.workloads import (
            small_beam_steering,
            small_corner_turn,
            small_cslc,
        )

        workloads = {
            "corner_turn": small_corner_turn(),
            "cslc": small_cslc(),
            "beam_steering": small_beam_steering(),
        }
    scenarios = [
        scenario_for_workloads(
            "viram",
            workloads,
            calibration=perturbed_calibration(
                "viram", "dram_row_cycle", factor
            ),
        )
        for factor in _BATCH_FACTORS
    ]
    serial = [
        [
            registry.run(
                spec.kernel,
                scenario.machine,
                cache=False,
                **scenario.stage_kwargs(spec),
            )
            for spec in scenario.stages
        ]
        for scenario in scenarios
    ]
    batched = run_scenarios(scenarios)
    diffs: List[str] = []
    for factor, runs, prun in zip(_BATCH_FACTORS, serial, batched):
        for run, result in zip(runs, prun.stages):
            for diff in diff_runs(run, result.run, rtol=0.0):
                diffs.append(
                    f"factor {factor} {result.spec.kernel}: {diff}"
                )
    return CheckResult(
        name,
        PASS if not diffs else FAIL,
        "" if not diffs else (
            "batched pipeline vs serial runs disagree: "
            + "; ".join(diffs[:5])
        ),
    )


def pipeline_checks(
    workloads: Optional[Mapping[str, Any]] = None,
) -> List[CheckResult]:
    """The fast-tier pipeline invariants.

    One three-stage scenario per machine (canonical workloads unless
    overridden — by the time the fast tier runs these, every cell is
    already in the memoization cache, so composition is nearly free),
    plus the batch-vs-serial differential, which cold-simulates a small
    VIRAM scenario population both ways on every run.
    """
    from repro.scenarios.model import scenario_for_workloads
    from repro.scenarios.pipeline import run_pipeline

    results: List[CheckResult] = []
    from repro.mappings import registry

    for machine in registry.MACHINES:
        prun = run_pipeline(scenario_for_workloads(machine, workloads))
        results.extend(validate_pipeline_run(prun))
    results.append(_batch_vs_serial(workloads))
    return results
