"""Check-result records and report rendering for :mod:`repro.check`.

A check produces :class:`CheckResult` rows — pass, fail, or skip, each
with a machine-readable name and a human-readable detail — and a
:class:`CheckReport` aggregates them into the summary the ``repro
check`` CLI prints and ``full_report`` appends.  Failures carry enough
detail to reproduce the violation (the offending numbers, never just
"mismatch").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.errors import CheckError

PASS = "pass"
FAIL = "fail"
SKIP = "skip"
WARN = "warn"

_STATUSES = (PASS, FAIL, SKIP, WARN)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant or oracle check.

    ``name`` is dotted and stable (``invariant.bound.corner_turn.viram``,
    ``oracle.dram.batch-vs-reference``); ``status`` is ``pass``/``fail``/
    ``skip``/``warn``; ``detail`` explains a failure, a skip, or a
    degraded-but-survivable condition (``warn`` — used by the chaos and
    doctor surfaces; like ``skip``, it does not fail the report).
    """

    name: str
    status: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ValueError(
                f"status must be one of {_STATUSES}, got {self.status!r}"
            )

    def format(self) -> str:
        line = f"{self.status.upper():4s} {self.name}"
        if self.detail:
            line += f" — {self.detail}"
        return line


@dataclass
class CheckReport:
    """An ordered collection of check results with a verdict."""

    tier: str = "fast"
    results: List[CheckResult] = field(default_factory=list)

    def add(self, name: str, status: str, detail: str = "") -> CheckResult:
        result = CheckResult(name=name, status=status, detail=detail)
        self.results.append(result)
        return result

    def extend(self, results: Iterable[CheckResult]) -> None:
        self.results.extend(results)

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in _STATUSES}
        for result in self.results:
            out[result.status] += 1
        return out

    @property
    def ok(self) -> bool:
        """No failures (skips are allowed)."""
        return all(r.status != FAIL for r in self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if r.status == FAIL]

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self, verbose: bool = False) -> str:
        """The report text: failures and skips always, passes one-line
        summarised unless ``verbose``."""
        counts = self.counts()
        summary = (
            f"repro check [{self.tier}]: "
            f"{counts[PASS]} passed, {counts[FAIL]} failed, "
            f"{counts[SKIP]} skipped"
        )
        if counts[WARN]:
            summary += f", {counts[WARN]} warnings"
        lines = [summary]
        for result in self.results:
            if verbose or result.status != PASS:
                lines.append("  " + result.format())
        lines.append("verdict: " + ("OK" if self.ok else "CORRUPT"))
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.CheckError` carrying the report
        text when any check failed."""
        if not self.ok:
            raise CheckError(self.render())
