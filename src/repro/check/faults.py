"""Fault injection: prove each differential oracle detects what it
claims to detect.

A validation subsystem that has never seen a failure is itself
unvalidated.  Each injector here deliberately corrupts one of the
redundant evaluation paths — a tampered cache entry, a process pool
that misdelivers worker results, a perturbed vectorised DRAM timing
path — and :func:`run_injection` asserts the matching oracle flags it.
An oracle that stays green under its own fault is a blind spot and is
reported as UNDETECTED.

All injectors are context managers that restore the patched state on
exit; the global run cache is cleared afterwards so no corruption
leaks into later work.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Dict, Iterator, List

from repro.check.report import FAIL, CheckResult
from repro.check import oracles


@dataclasses.dataclass(frozen=True)
class InjectionOutcome:
    """Result of one fault-injection scenario."""

    fault: str
    oracle: str
    detected: bool
    evidence: str


def _oracle_kwargs(kernel: str) -> Dict[str, object]:
    """The kwargs the disk-tier oracle will run ``kernel`` with.

    The oracle anchors its differential on the reduced probe workload
    (see :mod:`repro.check.probes`), so a disk-tier injector must
    corrupt *that* entry — tampering the canonical-size entry would
    leave the oracle reading an honest record and scoring the fault
    UNDETECTED for the wrong reason.
    """
    from repro.check.probes import probe_workloads

    probes = probe_workloads()
    return {"workload": probes[kernel]} if kernel in probes else {}


@contextlib.contextmanager
def corrupted_cache_entry(
    kernel: str = "corner_turn", machine: str = "viram"
) -> Iterator[str]:
    """Tamper the cached run for ``(kernel, machine)``: scale its cycle
    ledger by 2x, exactly the corruption a stale or bit-flipped entry
    would present.  Yields the tampered cache key."""
    from repro.errors import CheckError
    from repro.mappings import registry
    from repro.perf.cache import RUN_CACHE, cache_key

    if not RUN_CACHE.enabled:
        # Nothing to corrupt; the oracle will report the skip.
        yield ""
        return
    registry.run(kernel, machine)  # ensure the entry exists
    key = cache_key(kernel, machine, {})

    def scale(entry) -> None:
        entry.breakdown = entry.breakdown.scaled(2.0)

    if key is None or not RUN_CACHE.tamper(key, scale):
        raise CheckError(
            f"could not tamper the cache entry for {kernel}/{machine}"
        )
    try:
        yield key
    finally:
        RUN_CACHE.clear()


@contextlib.contextmanager
def tampered_disk_entry(
    kernel: str = "corner_turn", machine: str = "viram"
) -> Iterator[str]:
    """Rewrite the persisted disk entry for ``(kernel, machine)`` with a
    2x-scaled cycle ledger and a *valid* digest — the stale-but-
    self-consistent corruption hash verification cannot catch, which is
    exactly what the disk-tier differential oracle exists for.  The
    memory-tier copy is evicted so the next lookup must cross the disk.
    Yields the tampered key."""
    from repro.errors import CheckError
    from repro.mappings import registry
    from repro.perf.cache import RUN_CACHE, cache_key
    from repro.perf.diskcache import DISK_CACHE

    if not DISK_CACHE.enabled:
        yield ""
        return
    kwargs = _oracle_kwargs(kernel)
    registry.run(kernel, machine, **kwargs)  # ensure both tiers hold it
    key = cache_key(kernel, machine, kwargs)

    def scale(entry) -> None:
        entry.breakdown = entry.breakdown.scaled(2.0)

    if key is None or not DISK_CACHE.tamper(key, scale):
        raise CheckError(
            f"could not tamper the disk entry for {kernel}/{machine}"
        )
    RUN_CACHE.evict(key)
    try:
        yield key
    finally:
        DISK_CACHE.evict(key)
        RUN_CACHE.clear()


@contextlib.contextmanager
def bitflipped_disk_entry(
    kernel: str = "corner_turn", machine: str = "viram"
) -> Iterator[str]:
    """Flip a payload byte of the persisted entry *without* refreshing
    its digest — media corruption.  The read path must refuse the entry
    (counted under ``corrupt``) and the integrity sweep must fail.
    Yields the corrupted key."""
    from repro.errors import CheckError
    from repro.mappings import registry
    from repro.perf.cache import RUN_CACHE, cache_key
    from repro.perf.diskcache import DISK_CACHE

    if not DISK_CACHE.enabled:
        yield ""
        return
    registry.run(kernel, machine)
    key = cache_key(kernel, machine, {})
    if key is None or not DISK_CACHE.corrupt_bytes(key):
        raise CheckError(
            f"could not corrupt the disk entry for {kernel}/{machine}"
        )
    RUN_CACHE.evict(key)
    try:
        yield key
    finally:
        DISK_CACHE.evict(key)
        RUN_CACHE.clear()


@contextlib.contextmanager
def truncated_disk_entry(
    kernel: str = "corner_turn", machine: str = "viram"
) -> Iterator[str]:
    """Tear the persisted entry mid-payload — the torn record a crash
    mid-write or a full disk leaves behind.  The integrity sweep must
    flag it, and (separately, proven in the resilience tests) a
    ``lookup`` must quarantine it and miss rather than raise.  Yields
    the truncated key."""
    from repro.errors import CheckError
    from repro.mappings import registry
    from repro.perf.cache import RUN_CACHE, cache_key
    from repro.perf.diskcache import DISK_CACHE

    if not DISK_CACHE.enabled:
        yield ""
        return
    registry.run(kernel, machine)
    key = cache_key(kernel, machine, {})
    if key is None or not DISK_CACHE.truncate_entry(key):
        raise CheckError(
            f"could not truncate the disk entry for {kernel}/{machine}"
        )
    RUN_CACHE.evict(key)
    try:
        yield key
    finally:
        DISK_CACHE.evict(key)
        RUN_CACHE.clear()


@contextlib.contextmanager
def tampered_migrated_entry(
    kernel: str = "corner_turn", machine: str = "viram"
) -> Iterator[str]:
    """Plant a *legacy* file-per-key entry whose run has a 2x-scaled
    cycle ledger and a valid digest, then ``cache migrate`` it into the
    packed index.  Migration verifies digests, so the self-consistent
    tamper rides through — exactly the stale data a migration can
    launder into the new store; the disk-tier differential oracle must
    catch it downstream.  Yields the tampered key."""
    import copy

    from repro.errors import CheckError
    from repro.mappings import registry
    from repro.perf.cache import RUN_CACHE, cache_key
    from repro.perf.diskcache import DISK_CACHE, DiskCache

    if not DISK_CACHE.enabled:
        yield ""
        return
    kwargs = _oracle_kwargs(kernel)
    run = registry.run(kernel, machine, **kwargs)
    key = cache_key(kernel, machine, kwargs)
    if key is None:
        raise CheckError(
            f"could not key the run for {kernel}/{machine}"
        )
    bad = copy.deepcopy(run)
    bad.breakdown = bad.breakdown.scaled(2.0)
    legacy = DiskCache(DISK_CACHE.root(), respect_env=False)
    path = legacy._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(DiskCache.encode(bad))
    DISK_CACHE.evict(key)  # drop the honest packed copy first
    outcome = DISK_CACHE.migrate_legacy()
    if outcome["migrated"] < 1 or not DISK_CACHE.contains(key):
        raise CheckError(
            f"migration did not pack the planted entry for "
            f"{kernel}/{machine}"
        )
    RUN_CACHE.evict(key)
    try:
        yield key
    finally:
        DISK_CACHE.evict(key)
        RUN_CACHE.clear()


@contextlib.contextmanager
def misdelivered_worker_results() -> Iterator[None]:
    """Patch the process-pool path to swap its first two results —
    the classic dropped/reordered-future bug a parallel executor can
    develop.  Single-result pools get their result's cycles doubled
    instead, so the fault is never a silent no-op."""
    from repro.perf import executor

    original = executor._run_unit_pool

    def swapped(units, n_jobs, chunk_size=None):
        outcomes = original(units, n_jobs, chunk_size=chunk_size)
        if outcomes is None:
            return None
        if len(outcomes) >= 2:
            outcomes[0], outcomes[1] = outcomes[1], outcomes[0]
        elif outcomes and outcomes[0]:
            outcomes[0][0].breakdown = outcomes[0][0].breakdown.scaled(2.0)
        return outcomes

    executor._run_unit_pool = swapped
    try:
        yield
    finally:
        executor._run_unit_pool = original
        from repro.perf.cache import RUN_CACHE

        RUN_CACHE.clear()


@contextlib.contextmanager
def perturbed_dram_timing(extra_activation_cycles: float = 1.0) -> Iterator[None]:
    """Perturb the vectorised DRAM batch path: every segment's exposed
    activation time gains ``extra_activation_cycles``.  This models a
    regression in the numpy costing that the pure-Python
    :class:`DRAMReference` — an independent implementation — must
    catch."""
    import numpy as np

    from repro.memory import dram as dram_module

    original = dram_module.DRAM.access_run

    def perturbed(self, addresses, seg_lengths, rates, kinds=None):
        batch = original(self, addresses, seg_lengths, rates, kinds)
        return dataclasses.replace(
            batch,
            activation_cycles=batch.activation_cycles
            + np.full_like(batch.activation_cycles, extra_activation_cycles),
        )

    dram_module.DRAM.access_run = perturbed
    try:
        yield
    finally:
        dram_module.DRAM.access_run = original


def _cache_oracle_under_fault() -> List[CheckResult]:
    return oracles.cache_oracle(pairs=[("corner_turn", "viram")])


def _executor_oracle_under_fault() -> List[CheckResult]:
    return oracles.executor_oracle(jobs=2)


def _dram_oracle_under_fault() -> List[CheckResult]:
    return oracles.dram_oracle()


def _disk_oracle_under_fault() -> List[CheckResult]:
    return oracles.disk_cache_oracle(pairs=[("corner_turn", "viram")])


def _disk_integrity_under_fault() -> List[CheckResult]:
    return oracles.disk_integrity_check()


#: The injection matrix: fault name -> (injector, oracle name, oracle fn).
SCENARIOS: Dict[str, tuple] = {
    "cache-entry-tampered": (
        corrupted_cache_entry,
        "cache",
        _cache_oracle_under_fault,
    ),
    "disk-entry-tampered": (
        tampered_disk_entry,
        "diskcache",
        _disk_oracle_under_fault,
    ),
    "disk-entry-bitflipped": (
        bitflipped_disk_entry,
        "diskcache",
        _disk_integrity_under_fault,
    ),
    "disk-entry-truncated": (
        truncated_disk_entry,
        "diskcache",
        _disk_integrity_under_fault,
    ),
    "migrated-entry-tampered": (
        tampered_migrated_entry,
        "diskcache",
        _disk_oracle_under_fault,
    ),
    "executor-results-misdelivered": (
        misdelivered_worker_results,
        "executor",
        _executor_oracle_under_fault,
    ),
    "dram-batch-timing-perturbed": (
        perturbed_dram_timing,
        "dram",
        _dram_oracle_under_fault,
    ),
}


def run_injection(
    scenarios: Dict[str, tuple] = None,
) -> List[InjectionOutcome]:
    """Run every fault scenario and record whether its oracle detected
    the corruption (i.e., produced at least one FAIL result)."""
    outcomes: List[InjectionOutcome] = []
    for fault, (injector, oracle_name, oracle_fn) in (
        scenarios or SCENARIOS
    ).items():
        with injector():
            results = oracle_fn()
        failures = [r for r in results if r.status == FAIL]
        skipped_only = all(r.status == "skip" for r in results)
        if failures:
            evidence = failures[0].format()
        elif skipped_only:
            evidence = "oracle skipped (environment cannot run this path)"
        else:
            evidence = "oracle stayed green under its own fault"
        outcomes.append(
            InjectionOutcome(
                fault=fault,
                oracle=oracle_name,
                detected=bool(failures),
                evidence=evidence,
            )
        )
    return outcomes


def render_injection(outcomes: List[InjectionOutcome]) -> str:
    """Human-readable injection report."""
    lines = ["fault injection: each oracle vs its own corruption"]
    for outcome in outcomes:
        verdict = "DETECTED" if outcome.detected else "UNDETECTED"
        lines.append(
            f"  {verdict:10s} fault={outcome.fault} oracle={outcome.oracle}"
        )
        lines.append(f"             {outcome.evidence}")
    detected = sum(o.detected for o in outcomes)
    lines.append(
        f"{detected}/{len(outcomes)} injected corruptions detected"
    )
    return "\n".join(lines)
