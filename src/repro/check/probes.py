"""Reduced *probe* workloads for the expensive differential checks.

The fast-tier differentials that must **re-simulate** (the traced run
behind ``invariant.trace.*``, the cold anchor behind
``oracle.diskcache.*``) prove *structural* properties — the tracer does
not perturb the model, a persisted entry round-trips bit-identically —
that hold at any problem size.  Running them at the paper's canonical
sizes made the validation section the dominant cost of a fully-cached
report (PR 9's warm-latency target), so these checks default to the
probe sizes below: small enough to simulate in milliseconds, chosen to
keep every mapping in the same regime as the canonical workload (the
VIRAM corner turn stays on-chip, so the per-segment DRAM/TLB trace
layers still run instead of skipping).

An explicit ``workloads`` entry passed to ``run_checks`` /
``full_report`` still wins: a user validating a custom size gets their
size checked.  The §2.5-bound invariants and the oracles that *reuse*
already-computed runs keep operating on the real published results —
probes only replace sizes for checks that would otherwise re-simulate
from scratch.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["probe_workloads"]


def probe_workloads() -> Dict[str, Any]:
    """One reduced workload per kernel, regime-matched to canonical."""
    from repro.kernels.beam_steering import BeamSteeringWorkload
    from repro.kernels.corner_turn import CornerTurnWorkload
    from repro.kernels.cslc import CSLCWorkload

    return {
        "corner_turn": CornerTurnWorkload(rows=256, cols=256),
        "cslc": CSLCWorkload(samples=1024, n_subbands=8, subband_len=128),
        "beam_steering": BeamSteeringWorkload(
            elements=402, directions=2, dwells=2
        ),
    }
