"""Golden-fixture generation for the snapshot tests.

The snapshot tests (``tests/eval/test_golden_snapshots.py``) pin the
``repro report`` stdout and the ``eval/export`` CSV byte-for-byte
against fixtures under ``tests/data/golden/``.  This module is the one
sanctioned way to regenerate them::

    make refresh-golden
    # equivalently:
    PYTHONPATH=src python -m repro.check.golden tests/data/golden

Regeneration is a deliberate act: do it only when an output change is
intentional, and review the fixture diff like any other code change
(the regression-pin test's policy, extended to whole documents).
"""

from __future__ import annotations

import difflib
import sys
from pathlib import Path
from typing import Dict, List

#: Fixture file names under the golden directory.
REPORT_FIXTURE = "report.txt"
TABLE3_CSV_FIXTURE = "table3.csv"
PIPELINE_FIXTURE_TEMPLATE = "pipeline_{machine}.txt"


def pipeline_fixture_names() -> Dict[str, str]:
    """``{fixture file name: machine}`` for the pipeline snapshots."""
    from repro.mappings.registry import MACHINES

    return {
        PIPELINE_FIXTURE_TEMPLATE.format(machine=machine): machine
        for machine in MACHINES
    }


def golden_documents() -> Dict[str, str]:
    """Every golden document, keyed by fixture file name.

    Uses the canonical workloads — exactly what ``python -m repro
    report`` prints, ``eval/export.write_csv`` writes, and ``repro
    pipeline run`` renders per machine.
    """
    from repro.eval.export import table3_csv
    from repro.eval.report import full_report
    from repro.eval.tables import run_table3
    from repro.scenarios import (
        canonical_scenario,
        render_pipeline,
        run_pipeline,
    )

    results = run_table3()
    documents = {
        REPORT_FIXTURE: full_report() + "\n",
        TABLE3_CSV_FIXTURE: table3_csv(results),
    }
    for name, machine in pipeline_fixture_names().items():
        prun = run_pipeline(canonical_scenario(machine))
        documents[name] = render_pipeline(prun) + "\n"
    return documents


def write_golden(directory: Path) -> List[Path]:
    """Write every golden document under ``directory``; returns paths.

    Writes are atomic (temp file + rename), so an interrupted refresh
    can never leave a half-written fixture to confuse the next diff.
    """
    from repro.ioutil import atomic_write_text

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in golden_documents().items():
        path = directory / name
        atomic_write_text(path, text)
        written.append(path)
    return written


def diff_against_golden(name: str, actual: str, directory: Path) -> str:
    """Unified diff of ``actual`` vs the checked-in fixture ``name``.

    Empty string means they match.  A non-empty diff is the snapshot
    test's failure message, with the refresh instruction attached.
    """
    path = Path(directory) / name
    if not path.exists():
        return (
            f"golden fixture {path} is missing — "
            "run `make refresh-golden` and commit the result"
        )
    expected = path.read_text()
    if actual == expected:
        return ""
    diff = "".join(
        difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"golden/{name} (checked in)",
            tofile=f"{name} (current output)",
        )
    )
    return (
        f"{name} drifted from its golden fixture.\n{diff}\n"
        "If this change is intentional, run `make refresh-golden` and "
        "commit the updated fixture."
    )


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    directory = Path(argv[0]) if argv else Path("tests/data/golden")
    for path in write_golden(directory):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via Makefile
    raise SystemExit(main())
