"""Machine-checkable invariants over :class:`~repro.arch.base.KernelRun`.

Each invariant encodes a cross-check the paper's authors did by hand:

* **bound** — simulated cycles can never beat the §2.5 analytic lower
  bound (Table 4 applies it to the corner turn; §4.3/§4.4 quote the
  CSLC and beam-steering peak-rate predictions).
* **traffic** — the load/store census must cover the kernel's minimum
  memory footprint (Tables 3-5 all report kernels that move the whole
  working set at least once).
* **accounting** — the per-category cycle ledger is non-negative, sums
  to the reported total, and its fractions (the §4.2-§4.4 "87% of the
  cycles" statements) sum to one.
* **throughput** — achieved arithmetic throughput cannot exceed the
  machine's Table 2 per-cycle peak (§4.3's "percent of peak" is a
  percentage of something real).
* **functional** — the mapping's output matched the reference
  implementation (§3's setup: every kernel is verified functionally).
* **conservation** — the discrete-event engine neither loses nor
  invents events (scheduled = processed + cancelled + pending).
* **trace** — tracing only observes: a traced run's numbers equal an
  untraced run's, and the event stream it produces agrees with the
  cycle ledger two independent ways (the chrome-exported accounting
  tracks sum back to the ledger; the fine-grained DRAM/TLB tracks,
  built event-by-event inside the memory models, sum to the ledger's
  memory categories computed by vectorised aggregation).

``validate_run`` applies the per-run invariants; the engine invariant
is exercised on a deterministic scenario because a finished
:class:`KernelRun` no longer holds its engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.arch.base import KernelRun
from repro.check.report import FAIL, PASS, SKIP, CheckResult
from repro.models.bounds import kernel_bound, kernel_footprint_words

#: Relative slack on float comparisons.  The models are deterministic;
#: this only absorbs summation-order effects.
RTOL = 1e-9


def _result(name: str, ok: bool, detail: str) -> CheckResult:
    return CheckResult(name=name, status=PASS if ok else FAIL, detail="" if ok else detail)


def check_bound(run: KernelRun, workload: Optional[Any] = None) -> CheckResult:
    """Simulated cycles >= the §2.5 analytic lower bound."""
    name = f"invariant.bound.{run.kernel}.{run.machine}"
    bound = kernel_bound(run.kernel, run.machine, workload)
    ok = run.cycles >= bound.bound_cycles * (1.0 - RTOL)
    return _result(
        name,
        ok,
        f"simulated {run.cycles:,.0f} cycles beat the {bound.binding}-side "
        f"§2.5 bound of {bound.bound_cycles:,.1f} — the model claims "
        "faster-than-physics execution",
    )


def check_traffic(run: KernelRun, workload: Optional[Any] = None) -> CheckResult:
    """Reported memory traffic >= the kernel's footprint floor.

    Mappings whose operation census does not include a load/store count
    (the CSLC mappings count arithmetic only) are skipped, not failed:
    absence of a census is not evidence of dropped traffic.
    """
    name = f"invariant.traffic.{run.kernel}.{run.machine}"
    ops = run.ops.as_dict()
    moved = float(ops.get("loads", 0.0)) + float(ops.get("stores", 0.0))
    if moved == 0.0:
        return CheckResult(
            name=name,
            status=SKIP,
            detail="mapping reports no load/store census",
        )
    footprint = kernel_footprint_words(run.kernel, workload)
    ok = moved >= footprint * (1.0 - RTOL)
    return _result(
        name,
        ok,
        f"moved {moved:,.0f} words but the workload footprint is "
        f"{footprint:,.0f} — part of the working set never touched memory",
    )


def check_accounting(run: KernelRun) -> List[CheckResult]:
    """The cycle ledger is non-negative, additive, and complete."""
    prefix = f"invariant.accounting.{run.kernel}.{run.machine}"
    results: List[CheckResult] = []
    negative = [c for c, v in run.breakdown.items() if v < 0]
    results.append(
        _result(
            f"{prefix}.nonnegative",
            not negative,
            f"negative cycle categories: {negative}",
        )
    )
    total = sum(v for _, v in run.breakdown.items())
    results.append(
        _result(
            f"{prefix}.sums-to-total",
            abs(total - run.cycles) <= RTOL * max(1.0, abs(run.cycles)),
            f"categories sum to {total:,.2f} but the run reports "
            f"{run.cycles:,.2f} total cycles",
        )
    )
    if run.cycles > 0:
        fractions = sum(
            run.breakdown.fraction(c) for c in run.breakdown.categories()
        )
        results.append(
            _result(
                f"{prefix}.fractions",
                abs(fractions - 1.0) <= 1e-6,
                f"category fractions sum to {fractions:.9f}, not 1",
            )
        )
    results.append(
        _result(
            f"{prefix}.positive-total",
            run.cycles > 0,
            f"non-positive total cycles {run.cycles}",
        )
    )
    return results


def check_throughput(run: KernelRun) -> CheckResult:
    """Achieved flops/cycle <= the machine's Table 2 peak."""
    name = f"invariant.throughput.{run.kernel}.{run.machine}"
    ok = run.flops_per_cycle <= run.spec.flops_per_cycle * (1.0 + RTOL)
    return _result(
        name,
        ok,
        f"achieved {run.flops_per_cycle:.3f} flops/cycle exceeds the "
        f"{run.spec.display_name} peak of {run.spec.flops_per_cycle:.3f}",
    )


def check_functional(run: KernelRun) -> CheckResult:
    """The mapping's output matched the reference implementation."""
    name = f"invariant.functional.{run.kernel}.{run.machine}"
    return _result(
        name,
        bool(run.functional_ok),
        "functional check failed — the performance numbers describe a "
        "kernel that computed the wrong answer",
    )


def check_ops_census(run: KernelRun) -> CheckResult:
    """Operation counts are non-negative."""
    name = f"invariant.ops.{run.kernel}.{run.machine}"
    negative = {c: v for c, v in run.ops.as_dict().items() if v < 0}
    return _result(name, not negative, f"negative op counts: {negative}")


def validate_run(
    run: KernelRun, workload: Optional[Any] = None
) -> List[CheckResult]:
    """All per-run invariants for one kernel run.

    ``workload`` is the workload the run was produced with (``None``
    means the canonical paper workload) — the bound and footprint are
    functions of it.
    """
    results = [check_bound(run, workload), check_traffic(run, workload)]
    results.extend(check_accounting(run))
    results.append(check_throughput(run))
    results.append(check_functional(run))
    results.append(check_ops_census(run))
    return results


def validate_results(
    results: Mapping[Any, KernelRun],
    workloads: Optional[Mapping[str, Any]] = None,
) -> List[CheckResult]:
    """Validate a sweep's result dict (``(kernel, machine) -> run``)."""
    out: List[CheckResult] = []
    for (kernel, _machine), run in sorted(results.items()):
        workload = workloads.get(kernel) if workloads else None
        out.extend(validate_run(run, workload))
    return out


def check_trace_accounting(
    workloads: Optional[Mapping[str, Any]] = None,
) -> List[CheckResult]:
    """Trace a VIRAM corner turn and cross-check events against ledgers.

    Four layers of agreement, each a genuine differential (the two sides
    are computed by different code paths):

    1. *noninterference* — the traced run's cycles and breakdown equal a
       fresh untraced run's (the tracer only observes);
    2. *export round-trip* — summing span durations out of the exported
       chrome document reproduces every ledger category and the total;
    3. *dram track vs ledger* — the per-segment spans emitted inside
       :meth:`~repro.memory.dram.DRAM.access_run` (one Python-level
       event per segment) sum to the mapping's memory categories, which
       it computed by numpy aggregation over the same batch;
    4. *tlb track vs ledger* — the refill spans emitted per TLB batch
       sum to the ledger's "tlb misses" charge.

    Layers 3-4 are skipped for workloads the mapping runs in its
    off-chip DMA regime (the ledger then has different categories).
    """
    from repro.check.probes import probe_workloads
    from repro.mappings import registry
    from repro.trace.export import chrome_busy_by_track, to_chrome
    from repro.trace.run import trace_run

    kwargs: Dict[str, Any] = {}
    if workloads and "corner_turn" in workloads:
        kwargs["workload"] = workloads["corner_turn"]
    else:
        # No pinned size: trace the probe workload — the four layers of
        # agreement are structural, and the probe keeps the traced
        # re-simulation in milliseconds while staying in the on-chip
        # regime so layers 3-4 still run (see repro.check.probes).
        kwargs["workload"] = probe_workloads()["corner_turn"]

    results: List[CheckResult] = []
    baseline = registry.run("corner_turn", "viram", **kwargs)
    run, tracer = trace_run("corner_turn", "viram", **kwargs)

    def close(a: float, b: float) -> bool:
        return abs(a - b) <= RTOL * max(1.0, abs(a), abs(b))

    results.append(
        _result(
            "invariant.trace.noninterference",
            run.cycles == baseline.cycles and run.breakdown == baseline.breakdown,
            f"traced run reports {run.cycles:,.2f} cycles vs untraced "
            f"{baseline.cycles:,.2f} — the observer changed the model",
        )
    )

    busy = chrome_busy_by_track(to_chrome(tracer))
    ledger = run.breakdown.as_dict()
    mismatched = [
        category
        for category, cycles in ledger.items()
        if not close(busy.get(f"accounting/{category}", 0.0), cycles)
    ]
    results.append(
        _result(
            "invariant.trace.accounting.categories",
            not mismatched,
            "chrome-exported accounting tracks disagree with the cycle "
            f"ledger for {mismatched} — the export path dropped or "
            "distorted spans",
        )
    )
    exported_total = sum(
        v for k, v in busy.items() if k.startswith("accounting/")
    )
    results.append(
        _result(
            "invariant.trace.accounting.total",
            close(exported_total, run.cycles),
            f"accounting tracks sum to {exported_total:,.2f} but the run "
            f"reports {run.cycles:,.2f} cycles",
        )
    )

    memory_categories = (
        "strided loads",
        "sequential stores",
        "dram row activations",
    )
    if "off-chip dma" in ledger:
        results.append(
            CheckResult(
                name="invariant.trace.dram-vs-ledger",
                status=SKIP,
                detail="workload runs in the off-chip DMA regime",
            )
        )
    else:
        dram_busy = busy.get("dram/viram-onchip", 0.0)
        ledger_memory = sum(ledger.get(c, 0.0) for c in memory_categories)
        results.append(
            _result(
                "invariant.trace.dram-vs-ledger",
                close(dram_busy, ledger_memory),
                f"dram track spans sum to {dram_busy:,.2f} but the ledger "
                f"charges {ledger_memory:,.2f} memory cycles — the "
                "per-segment events and the vectorised costing disagree",
            )
        )
        results.append(
            _result(
                "invariant.trace.tlb-vs-ledger",
                close(busy.get("tlb", 0.0), ledger.get("tlb misses", 0.0)),
                f"tlb refill spans sum to {busy.get('tlb', 0.0):,.2f} but "
                f"the ledger charges {ledger.get('tlb misses', 0.0):,.2f}",
            )
        )
    return results


def check_engine_conservation() -> List[CheckResult]:
    """Event conservation on a deterministic schedule/cancel storm.

    Schedules enough events to trip the engine's lazy heap compaction,
    cancels a deterministic subset (some before, some after running),
    and asserts scheduled = processed + cancelled + pending throughout.
    """
    from repro.sim.engine import Engine

    results: List[CheckResult] = []
    engine = Engine()
    events = [engine.schedule(float(i), lambda: None) for i in range(300)]
    # Cancel every third event — enough tombstones to trigger compaction.
    for event in events[::3]:
        event.cancel()
    mid_ok = engine.conservation_ok
    results.append(
        _result(
            "invariant.engine.conservation.pre-run",
            mid_ok,
            f"scheduled {engine.events_scheduled} != processed "
            f"{engine.events_processed} + cancelled "
            f"{engine.events_cancelled} + pending {engine.pending}",
        )
    )
    engine.run()
    results.append(
        _result(
            "invariant.engine.conservation.post-run",
            engine.conservation_ok and engine.pending == 0,
            f"after drain: scheduled {engine.events_scheduled}, processed "
            f"{engine.events_processed}, cancelled "
            f"{engine.events_cancelled}, pending {engine.pending}",
        )
    )
    expected = 300 - len(events[::3])
    results.append(
        _result(
            "invariant.engine.processed-count",
            engine.events_processed == expected,
            f"processed {engine.events_processed} events, expected {expected}",
        )
    )
    # The dynamic-network simulation rides on the engine: its wire-word
    # census must cover every message payload (headers only add).
    from repro.arch.raw.dynamic import Message, deliver

    traffic = deliver(
        [
            Message(src=(0, 0), dst=(3, 3), words=100),
            Message(src=(1, 2), dst=(2, 0), words=37, inject_time=5.0),
            Message(src=(2, 2), dst=(2, 2), words=8),
        ]
    )
    payload = 100 + 37 + 8
    results.append(
        _result(
            "invariant.engine.wire-words-cover-payload",
            traffic.total_wire_words >= payload,
            f"wire words {traffic.total_wire_words} below payload {payload} "
            "— the network dropped data",
        )
    )
    return results
