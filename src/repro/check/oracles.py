"""Differential oracles: re-execute runs along redundant paths and diff.

The library deliberately carries redundant evaluation paths — the run
cache vs a cold simulation, a serial sweep vs a process pool, the
vectorised :meth:`DRAM.access_run` vs the scalar :class:`DRAMReference`
— precisely so they can be diffed.  Agreement is the evidence that the
PR 1 performance work changed *nothing* about the published numbers;
each oracle here turns that claim into an executable check.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.check.report import FAIL, PASS, SKIP, CheckResult

#: Differential comparisons are exact by default: both paths run the
#: same deterministic arithmetic, so even the float results must match
#: bit for bit.  Cross-implementation comparisons (vectorised DRAM vs
#: the pure-Python reference) allow summation-order slack.
CROSS_IMPL_RTOL = 1e-9


def _close(a: Any, b: Any, rtol: float) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        try:
            return bool(
                np.isclose(float(a), float(b), rtol=rtol, atol=0.0)
            )
        except (TypeError, ValueError):
            return False
    return a == b


def diff_runs(a, b, rtol: float = 0.0) -> List[str]:
    """Field-by-field differences between two :class:`KernelRun` records.

    Returns human-readable difference strings; empty means the runs are
    value-identical (to ``rtol`` on floats; ``rtol=0`` demands bitwise
    equality, which determinism guarantees for same-path re-execution).
    """
    diffs: List[str] = []
    for field in ("kernel", "machine"):
        va, vb = getattr(a, field), getattr(b, field)
        if va != vb:
            diffs.append(f"{field}: {va!r} != {vb!r}")
    if not _close(a.cycles, b.cycles, rtol):
        diffs.append(f"cycles: {a.cycles!r} != {b.cycles!r}")
    for label, da, db in (
        ("breakdown", a.breakdown.as_dict(), b.breakdown.as_dict()),
        ("ops", a.ops.as_dict(), b.ops.as_dict()),
        ("metrics", a.metrics, b.metrics),
    ):
        for key in sorted(set(da) | set(db)):
            if key not in da:
                diffs.append(f"{label}[{key!r}]: missing on first run")
            elif key not in db:
                diffs.append(f"{label}[{key!r}]: missing on second run")
            elif not _close(da[key], db[key], rtol):
                diffs.append(
                    f"{label}[{key!r}]: {da[key]!r} != {db[key]!r}"
                )
    if bool(a.functional_ok) != bool(b.functional_ok):
        diffs.append(
            f"functional_ok: {a.functional_ok} != {b.functional_ok}"
        )
    if (a.output is None) != (b.output is None):
        diffs.append("output: present on one run only")
    elif a.output is not None and not np.array_equal(a.output, b.output):
        diffs.append("output: arrays differ")
    return diffs


def cache_oracle(
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    workloads: Optional[Mapping[str, Any]] = None,
) -> List[CheckResult]:
    """Cache hit vs cold simulation, diffed field by field.

    For each pair: one call that populates/serves the cache, a second
    call that must be served *from* the cache, and a ``cache=False``
    cold re-simulation.  All three must be value-identical — a tampered
    or stale cache entry shows up as a hit/cold diff.
    """
    from repro.mappings import registry
    from repro.perf.cache import RUN_CACHE

    if pairs is None:
        pairs = registry.available()
    results: List[CheckResult] = []
    for kernel, machine in pairs:
        name = f"oracle.cache.{kernel}.{machine}"
        kwargs: Dict[str, Any] = {}
        if workloads and kernel in workloads:
            kwargs["workload"] = workloads[kernel]
        if not RUN_CACHE.enabled:
            results.append(
                CheckResult(name, SKIP, "run cache disabled")
            )
            continue
        registry.run(kernel, machine, **kwargs)  # populate (or hit)
        warm = registry.run(kernel, machine, **kwargs)  # cache-served
        cold = registry.run(kernel, machine, cache=False, **kwargs)
        diffs = diff_runs(warm, cold, rtol=0.0)
        results.append(
            CheckResult(
                name,
                PASS if not diffs else FAIL,
                "" if not diffs else (
                    "cache-served run disagrees with cold simulation: "
                    + "; ".join(diffs[:5])
                ),
            )
        )
    return results


#: Default cells for the disk-tier oracle: one per kernel, spread over
#: the research machines, so all three mapping families cross the
#: persistence boundary every fast-tier run.
DISK_ORACLE_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("corner_turn", "viram"),
    ("cslc", "imagine"),
    ("beam_steering", "raw"),
)


def disk_cache_oracle(
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    workloads: Optional[Mapping[str, Any]] = None,
) -> List[CheckResult]:
    """Disk-tier hit vs memory-tier hit vs cold simulation, field by
    field.

    For each pair: a first run populates (or is served by) the tiers;
    the entry is then read back through the full persistence boundary —
    pickle, digest, file, unpickle — the key is evicted from the memory
    tier so a re-served run must cross the tiers again, and a
    ``cache=False`` cold re-simulation anchors the comparison.  All of
    them must be value-identical: a stale, tampered, or mis-serialised
    disk entry shows up as a disk-hit/cold diff.

    When the disk tier is opted out (``REPRO_DISK_CACHE=0`` or
    ``--no-disk-cache``) the oracle exercises the same machinery against
    an *ephemeral private store* instead of skipping: the subject under
    test is the persistence code path, not the user's cache directory,
    and the published validation section must not depend on cache
    configuration.
    """
    import contextlib
    import tempfile

    from repro.check.probes import probe_workloads
    from repro.mappings import registry
    from repro.perf.cache import RUN_CACHE, cache_key
    from repro.perf.diskcache import DISK_CACHE, DiskCache

    if pairs is None:
        pairs = DISK_ORACLE_PAIRS
    probes = probe_workloads()
    results: List[CheckResult] = []
    with contextlib.ExitStack() as stack:
        if DISK_CACHE.enabled:
            store = DISK_CACHE
        else:
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-oracle-disk-")
            )
            store = DiskCache(tmp, respect_env=False)
        for kernel, machine in pairs:
            name = f"oracle.diskcache.{kernel}.{machine}"
            kwargs: Dict[str, Any] = {}
            if workloads and kernel in workloads:
                kwargs["workload"] = workloads[kernel]
            elif kernel in probes:
                # No pinned size: anchor the differential on the probe
                # workload so the cold re-simulation stays milliseconds
                # (see repro.check.probes).
                kwargs["workload"] = probes[kernel]
            key = cache_key(kernel, machine, kwargs)
            if key is None:
                results.append(CheckResult(name, SKIP, "request uncacheable"))
                continue
            first = registry.run(kernel, machine, **kwargs)  # populate tiers
            if not store.contains(key):
                store.insert(key, first)  # memory tier pre-dated the disk
            disk_hit = store.lookup(key)  # the full persistence round-trip
            if disk_hit is None:
                results.append(
                    CheckResult(
                        name, FAIL,
                        "persisted entry unreadable (corrupt or vanished)",
                    )
                )
                continue
            RUN_CACHE.evict(key)
            reserved = registry.run(kernel, machine, **kwargs)  # re-served
            cold = registry.run(kernel, machine, cache=False, **kwargs)
            diffs = [
                f"disk-hit vs cold: {d}" for d in diff_runs(disk_hit, cold)
            ] + [
                f"re-served vs cold: {d}" for d in diff_runs(reserved, cold)
            ]
            results.append(
                CheckResult(
                    name,
                    PASS if not diffs else FAIL,
                    "" if not diffs else (
                        "tiered runs disagree with cold simulation: "
                        + "; ".join(diffs[:5])
                    ),
                )
            )
    return results


def disk_integrity_check() -> List[CheckResult]:
    """Digest-verify every persisted entry of the current model version.

    The write path hashes each payload and the read path refuses a
    mismatch, so a flipped bit can never be *served* — this check makes
    the same sweep eagerly, failing loudly if any stored entry no
    longer matches its digest (media corruption, torn external writes).

    When the disk tier is opted out, the sweep machinery is exercised
    against an ephemeral store seeded with a canary entry instead — the
    user's directory is left untouched but the check still runs, so the
    published validation section does not depend on cache configuration.
    """
    import tempfile

    from repro.perf.diskcache import DISK_CACHE, DiskCache

    name = "oracle.diskcache.integrity"
    if DISK_CACHE.enabled:
        bad = DISK_CACHE.verify()
    else:
        with tempfile.TemporaryDirectory(
            prefix="repro-oracle-disk-"
        ) as tmp:
            store = DiskCache(tmp, respect_env=False)
            store.insert("integritycanary", {"canary": 1.0})
            bad = store.verify()
    return [
        CheckResult(
            name,
            PASS if not bad else FAIL,
            "" if not bad else (
                f"{len(bad)} entries failed digest verification: "
                + ", ".join(k[:12] for k in bad[:5])
            ),
        )
    ]


def executor_oracle(
    requests: Optional[Sequence[Tuple[str, str, Dict[str, Any]]]] = None,
    jobs: int = 2,
) -> List[CheckResult]:
    """Serial sweep vs ``--jobs N`` process pool, diffed element-wise.

    Runs with *both* cache tiers disabled so both legs genuinely
    simulate — a persistent store warmed by an earlier process would
    otherwise answer the planner before it ever dispatched to the pool,
    blinding the oracle to pool-side misdelivery.  If the pool is
    unavailable in this environment (the supervisor degrades to serial
    and counts it under ``resilience.degradations``), the comparison is
    vacuous and reported as a skip.
    """
    from repro.perf.cache import RUN_CACHE
    from repro.perf.diskcache import DISK_CACHE
    from repro.perf.executor import run_cells
    from repro.resilience.stats import RESILIENCE

    if requests is None:
        from repro.kernels.workloads import (
            small_beam_steering,
            small_corner_turn,
            small_cslc,
        )

        requests = [
            ("corner_turn", "viram", {"workload": small_corner_turn()}),
            ("cslc", "raw", {"workload": small_cslc()}),
            ("beam_steering", "imagine", {"workload": small_beam_steering()}),
            ("beam_steering", "raw", {"workload": small_beam_steering()}),
        ]
    was_enabled = RUN_CACHE.enabled
    RUN_CACHE.disable()
    try:
        with DISK_CACHE.disabled():
            serial = run_cells(requests, jobs=1)
            degradations_before = RESILIENCE.snapshot()["degradations"]
            parallel = run_cells(requests, jobs=jobs)
        fell_back = (
            RESILIENCE.snapshot()["degradations"] > degradations_before
        )
    finally:
        if was_enabled:
            RUN_CACHE.enable()
    results: List[CheckResult] = []
    for (kernel, machine, _kwargs), a, b in zip(requests, serial, parallel):
        name = f"oracle.executor.{kernel}.{machine}"
        if fell_back:
            results.append(
                CheckResult(
                    name, SKIP, "process pool unavailable; both legs serial"
                )
            )
            continue
        diffs = diff_runs(a, b, rtol=0.0)
        results.append(
            CheckResult(
                name,
                PASS if not diffs else FAIL,
                "" if not diffs else (
                    f"serial vs jobs={jobs} disagree: " + "; ".join(diffs[:5])
                ),
            )
        )
    return results


def _dram_cases() -> List[Tuple[str, Any, List[np.ndarray], List[float]]]:
    """Deterministic (config, segments, rates) replay cases.

    Mixes sequential, strided, tiled-ish, repeated and empty segments
    over power-of-two and non-power-of-two geometries, covering both
    activation policies.
    """
    from repro.memory.dram import DRAMConfig

    def segs(*arrays):
        return [np.asarray(a, dtype=np.int64) for a in arrays]

    cases = []
    for policy in ("bank-parallel", "serialized"):
        cases.append(
            (
                f"pow2-{policy}",
                DRAMConfig(
                    name=f"check-pow2-{policy}",
                    banks=8,
                    row_words=256,
                    row_cycle=10.0,
                    access_latency=4.0,
                    activation_policy=policy,
                ),
                segs(
                    np.arange(0, 4096),              # sequential sweep
                    np.arange(0, 65536, 1024),       # row-per-access stride
                    [],                              # empty segment
                    np.tile(np.arange(0, 512), 3),   # re-walk open rows
                    np.arange(65536, 65536 + 100)[::-1].copy(),  # reversed
                ),
                [8.0, 4.0, 1.0, 8.0, 2.0],
            )
        )
        cases.append(
            (
                f"nonpow2-{policy}",
                DRAMConfig(
                    name=f"check-nonpow2-{policy}",
                    banks=6,
                    row_words=96,
                    row_cycle=7.0,
                    access_latency=3.0,
                    activation_policy=policy,
                ),
                segs(
                    np.arange(0, 1000),
                    np.arange(0, 30000, 97),         # coprime stride
                    np.repeat(np.arange(0, 600, 96), 5),  # bank hammering
                    [],
                ),
                [4.0, 2.0, 1.0, 1.0],
            )
        )
    return cases


def dram_oracle() -> List[CheckResult]:
    """Vectorised batch costing vs scalar replay vs the pure-Python
    reference simulator, on deterministic address patterns.

    Three independent paths cost the same program-ordered access stream:

    * :meth:`DRAM.access_run` — one vectorised batch call;
    * :meth:`DRAM.access` — per-segment scalar calls threading state;
    * :class:`DRAMReference.access` — the loop-based oracle.

    Activation counts must agree exactly; cycle totals to float slack.
    """
    from repro.memory.dram import DRAM, DRAMReference
    from repro.memory.streams import Custom

    results: List[CheckResult] = []
    for label, config, segments, rates in _dram_cases():
        batch_dram = DRAM(config)
        scalar_dram = DRAM(config)
        reference = DRAMReference(config)

        addresses = np.concatenate(segments) if segments else np.empty(
            0, dtype=np.int64
        )
        lengths = np.asarray([len(s) for s in segments], dtype=np.int64)
        batch = batch_dram.access_run(addresses, lengths, rates)

        mismatches: List[str] = []
        for i, (segment, rate) in enumerate(zip(segments, rates)):
            pattern = Custom(segment)
            scalar = scalar_dram.access(pattern, rate_words_per_cycle=rate)
            ref = reference.access(pattern, rate_words_per_cycle=rate)
            got = batch.segment(i)
            for other_label, other in (("scalar", scalar), ("reference", ref)):
                if got.activations != other.activations:
                    mismatches.append(
                        f"seg {i} activations: batch {got.activations} != "
                        f"{other_label} {other.activations}"
                    )
                for field in ("issue_cycles", "activation_cycles"):
                    ga, oa = getattr(got, field), getattr(other, field)
                    if not np.isclose(ga, oa, rtol=CROSS_IMPL_RTOL, atol=0.0):
                        mismatches.append(
                            f"seg {i} {field}: batch {ga!r} != "
                            f"{other_label} {oa!r}"
                        )
                if got.words != other.words:
                    mismatches.append(
                        f"seg {i} words: batch {got.words} != "
                        f"{other_label} {other.words}"
                    )
        if batch_dram.open_rows != scalar_dram.open_rows:
            mismatches.append(
                "final open-row state: batch "
                f"{batch_dram.open_rows} != scalar {scalar_dram.open_rows}"
            )
        results.append(
            CheckResult(
                f"oracle.dram.{label}",
                PASS if not mismatches else FAIL,
                "" if not mismatches else "; ".join(mismatches[:6]),
            )
        )
    return results
