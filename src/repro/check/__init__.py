"""Invariant checking and differential validation (``repro check``).

The paper's credibility rests on cross-checks: simulated cycles must
never beat the §2.5 analytic bounds, measured traffic must cover the
kernel footprints, and the three redundant evaluation paths added by
the performance work (memoization cache, process-pool executor,
vectorised DRAM costing) must agree bit-for-bit with their simple
counterparts.  This package makes every one of those checks executable:

* :mod:`repro.check.invariants` — per-run machine-checkable invariants;
* :mod:`repro.check.oracles` — differential re-execution oracles;
* :mod:`repro.check.faults` — fault injection proving the oracles see
  the corruption they claim to see;
* :mod:`repro.check.golden` — golden-fixture generation for the
  snapshot tests (``make refresh-golden``).

Tiers (the CLI's ``--fast`` / ``--full`` / ``--inject``):

* **fast** — invariants on every registered (kernel, machine) pair, the
  trace-vs-ledger cross-check (a traced run's event stream must sum
  back to its cycle ledger and must not perturb the model), the
  synthetic DRAM and engine oracles, the tensor-engine batch-vs-per-cell
  differential (``invariant.tensor.*``, :mod:`repro.check.tensor`), the
  pipeline composition invariants (``invariant.pipeline.*``,
  :mod:`repro.check.pipeline`: stage-cost additivity, footprint
  conservation across handoffs, batched-vs-serial bit-identity), the
  observability reconciliation (``invariant.obs.*``,
  :mod:`repro.check.obs`: flight-recorder events vs planner counters vs
  supervisor incident payloads), the service-runtime invariants
  (``invariant.service.*``, :mod:`repro.check.service`: journal
  schema/seq with torn-tail healing, job-state-machine legality, dedup
  conservation, crash-replay convergence), plus
  the disk-tier differential oracle (disk-hit vs memory-hit vs cold),
  an integrity sweep of the persisted entries, and the packed-index
  layout invariants (``invariant.index.*``, :mod:`repro.check.
  indexcheck`: round-trip, manifest replay, tombstones, torn-tail
  recovery, live digest sweep).  Cheap enough that ``full_report`` runs
  it automatically, so every published table ships pre-validated.
* **full** — fast, plus the cache oracle on every pair and the
  serial-vs-parallel executor oracle.
* **inject** — the fault-injection matrix (see :mod:`.faults`).
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.check.invariants import (
    check_engine_conservation,
    check_trace_accounting,
    validate_results,
    validate_run,
)
from repro.check.oracles import (
    cache_oracle,
    disk_cache_oracle,
    disk_integrity_check,
    dram_oracle,
    executor_oracle,
)
from repro.check.indexcheck import index_checks
from repro.check.obs import obs_checks
from repro.check.pipeline import pipeline_checks, validate_pipeline_run
from repro.check.report import CheckReport, CheckResult
from repro.check.service import service_checks
from repro.check.tensor import tensor_oracle
from repro.errors import CheckError

TIERS = ("fast", "full", "inject")


def run_checks(
    tier: str = "fast",
    jobs: int = 2,
    workloads: Optional[Mapping[str, Any]] = None,
) -> CheckReport:
    """Run the ``fast`` or ``full`` validation tier and return its report.

    ``workloads`` overrides the canonical per-kernel workloads (the same
    mapping ``full_report`` takes); ``jobs`` sizes the executor oracle's
    parallel leg.  The ``inject`` tier has a different result shape —
    use :func:`repro.check.faults.run_injection` (the CLI does).
    """
    from repro.mappings import registry

    if tier not in ("fast", "full"):
        raise CheckError(
            f"unknown check tier {tier!r}; expected 'fast' or 'full'"
        )
    report = CheckReport(tier=tier)

    def kwargs_for(kernel: str) -> Dict[str, Any]:
        if workloads and kernel in workloads:
            return {"workload": workloads[kernel]}
        return {}

    results = {
        (kernel, machine): registry.run(kernel, machine, **kwargs_for(kernel))
        for kernel, machine in registry.available()
    }
    report.extend(validate_results(results, workloads))
    report.extend(check_engine_conservation())
    report.extend(check_trace_accounting(workloads=workloads))
    report.extend(dram_oracle())
    report.extend(tensor_oracle(workloads=workloads))
    report.extend(disk_cache_oracle(workloads=workloads))
    report.extend(disk_integrity_check())
    report.extend(index_checks())
    report.extend(pipeline_checks(workloads=workloads))
    report.extend(obs_checks(workloads=workloads))
    report.extend(service_checks(workloads=workloads))
    if tier == "full":
        report.extend(cache_oracle(workloads=workloads))
        report.extend(executor_oracle(jobs=jobs))
    return report


@contextlib.contextmanager
def continuous_validation(
    workloads: Optional[Mapping[str, Any]] = None,
) -> Iterator[None]:
    """Validate every freshly simulated run as it is produced.

    Installs a :func:`repro.mappings.registry.set_post_run_validator`
    hook that applies the per-run invariants and raises
    :class:`~repro.errors.CheckError` on violation — *before* the run
    can enter the memoization cache, so corrupt results are never
    served to later callers.  Restores the previous hook on exit.
    """
    from repro.check.report import FAIL
    from repro.mappings import registry

    def validator(run, kwargs) -> None:
        workload = kwargs.get("workload")
        if workload is None and workloads:
            workload = workloads.get(run.kernel)
        failures = [
            r for r in validate_run(run, workload) if r.status == FAIL
        ]
        if failures:
            raise CheckError(
                f"{run.kernel}/{run.machine}: "
                + "; ".join(f.format() for f in failures)
            )

    previous = registry.set_post_run_validator(validator)
    try:
        yield
    finally:
        registry.set_post_run_validator(previous)


def validation_section(
    workloads: Optional[Mapping[str, Any]] = None,
) -> str:
    """The fast-tier validation block ``full_report`` appends.

    By the time the report calls this, every run it rendered is in the
    memoization cache, so the fast tier re-reads them for free — the
    published tables and the validated runs are the same objects.
    """
    report = run_checks("fast", workloads=workloads)
    return report.render()


__all__ = [
    "CheckReport",
    "CheckResult",
    "TIERS",
    "cache_oracle",
    "check_engine_conservation",
    "check_trace_accounting",
    "continuous_validation",
    "disk_cache_oracle",
    "disk_integrity_check",
    "dram_oracle",
    "executor_oracle",
    "index_checks",
    "obs_checks",
    "pipeline_checks",
    "run_checks",
    "service_checks",
    "tensor_oracle",
    "validate_pipeline_run",
    "validate_results",
    "validate_run",
    "validation_section",
]
