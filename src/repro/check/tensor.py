"""Batch-vs-per-cell differential oracle for the tensor engine.

The tensorized sweep engine (:mod:`repro.perf.tensorsweep`) claims its
batch path is *bit-identical* to per-cell execution: a mapping's
``run()`` is literally the batch of one, so the two paths execute the
same float expressions in the same order.  That claim is structural —
and this oracle keeps it honest by re-proving it on a sampled sub-grid
every time the fast check tier runs.

For each sampled (kernel, machine) cell — one per machine row, covering
all four architecture families — a small calibration grid is built with
:func:`repro.eval.sensitivity.perturbed_calibration` and evaluated both
ways: cold scalar ``registry.run`` calls per cell, and one batch-runner
call over the whole grid.  Every field of every :class:`KernelRun` pair
is diffed with ``rtol=0`` (bitwise on floats, ``array_equal`` on
outputs).  Any divergence — a refactor that reordered a float
expression, a batch axis that leaked between cells — fails
``invariant.tensor.<kernel>.<machine>``.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from repro.check.oracles import diff_runs
from repro.check.report import FAIL, PASS, SKIP, CheckResult

#: Sampled sub-grid: (kernel, machine, calibration group, constant).
#: One cell per machine row so every architecture family's batch path
#: is exercised, each perturbing a constant that matters to that cell.
SAMPLE_CELLS = (
    ("corner_turn", "viram", "viram", "dram_row_cycle"),
    ("cslc", "imagine", "imagine", "cluster_schedule_inefficiency"),
    ("beam_steering", "ppc", "ppc", "dram_latency_cycles"),
    ("corner_turn", "altivec", "ppc", "l2_hit_cycles"),
    ("cslc", "raw", "raw", "cache_stall_fraction"),
)

#: Perturbation factors for the sampled grid (includes the unperturbed
#: anchor, so the batch also reproduces the published baseline cell).
SAMPLE_FACTORS = (0.85, 1.0, 1.25)


def tensor_oracle(
    workloads: Optional[Mapping[str, Any]] = None,
) -> List[CheckResult]:
    """Batch vs per-cell equivalence on the sampled sub-grid.

    ``workloads`` overrides the per-kernel workloads (the mapping
    ``run_checks`` takes); like the executor oracle, the default is the
    small workload set — equivalence is structural, not size-dependent,
    and both legs must *cold-simulate* every sampled cell on every fast
    tier run.  The scalar leg bypasses the memo cache, so a warmed
    cache can never mask a divergence in the batch path.
    """
    from repro.eval.sensitivity import perturbed_calibration
    from repro.mappings import registry

    if workloads is None:
        from repro.kernels.workloads import (
            small_beam_steering,
            small_corner_turn,
            small_cslc,
        )

        workloads = {
            "corner_turn": small_corner_turn(),
            "cslc": small_cslc(),
            "beam_steering": small_beam_steering(),
        }
    results: List[CheckResult] = []
    for kernel, machine, group, constant in SAMPLE_CELLS:
        name = f"invariant.tensor.{kernel}.{machine}"
        runner = registry.batch_runner(kernel, machine)
        if runner is None:
            results.append(
                CheckResult(name, SKIP, "no batch entry point registered")
            )
            continue
        kwargs: dict = {}
        if workloads and kernel in workloads:
            kwargs["workload"] = workloads[kernel]
        cals = [
            perturbed_calibration(group, constant, factor)
            for factor in SAMPLE_FACTORS
        ]
        per_cell = [
            registry.run(
                kernel, machine, cache=False, calibration=cal, **kwargs
            )
            for cal in cals
        ]
        batched = runner(cals, **kwargs)
        diffs: List[str] = []
        for factor, a, b in zip(SAMPLE_FACTORS, per_cell, batched):
            for diff in diff_runs(a, b, rtol=0.0):
                diffs.append(f"factor {factor}: {diff}")
        results.append(
            CheckResult(
                name,
                PASS if not diffs else FAIL,
                "" if not diffs else (
                    "batch vs per-cell disagree: " + "; ".join(diffs[:5])
                ),
            )
        )
    return results
