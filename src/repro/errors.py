"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """A machine or kernel configuration is inconsistent or out of range."""


class CapacityError(ReproError):
    """A working set does not fit in the memory it was placed in.

    Raised, e.g., when a kernel mapping tries to stage more data in the
    Imagine stream register file or a Raw tile's local SRAM than the
    configured capacity allows.  The paper's experimental setup depends on
    these constraints (the corner-turn matrix was chosen to be *larger*
    than Imagine's SRF and Raw's local memories but *smaller* than VIRAM's
    on-chip DRAM), so capacity violations are hard errors rather than
    silent spills.
    """


class ScheduleError(ReproError):
    """A dependency schedule is malformed (cycles, unknown tasks, ...)."""


class PatternError(ReproError):
    """An address-stream pattern descriptor is malformed."""


class MappingError(ReproError):
    """A kernel→machine mapping was invoked with an unsupported workload."""


class ExperimentError(ReproError):
    """An evaluation-harness experiment is unknown or failed to run."""


class CheckError(ReproError):
    """A machine-checked invariant or differential oracle was violated.

    Raised by :mod:`repro.check` when a run's numbers break one of the
    paper-derived invariants (cycles below the §2.5 bound, traffic below
    the kernel footprint, ...) or when two redundant evaluation paths
    disagree.  Carries the rendered check report in its message.
    """
