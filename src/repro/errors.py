"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.

The resilience layer (:mod:`repro.resilience`) extends the hierarchy
with an execution-failure taxonomy: :class:`TransientError` marks
infrastructure failures that are legitimate to retry or degrade around,
while its subclasses :class:`WorkerCrashError` and
:class:`DeadlineExceeded` mark failures that *survived* the retry budget
and must propagate (re-running a crashing cell serially would take the
main process down with it).  :class:`CacheCorruptionError` carries a
structured ``incident`` payload describing a quarantined store entry.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """A machine or kernel configuration is inconsistent or out of range."""


class CapacityError(ReproError):
    """A working set does not fit in the memory it was placed in.

    Raised, e.g., when a kernel mapping tries to stage more data in the
    Imagine stream register file or a Raw tile's local SRAM than the
    configured capacity allows.  The paper's experimental setup depends on
    these constraints (the corner-turn matrix was chosen to be *larger*
    than Imagine's SRF and Raw's local memories but *smaller* than VIRAM's
    on-chip DRAM), so capacity violations are hard errors rather than
    silent spills.
    """


class ScheduleError(ReproError):
    """A dependency schedule is malformed (cycles, unknown tasks, ...)."""


class PatternError(ReproError):
    """An address-stream pattern descriptor is malformed."""


class MappingError(ReproError):
    """A kernel→machine mapping was invoked with an unsupported workload."""


class ExperimentError(ReproError):
    """An evaluation-harness experiment is unknown or failed to run."""


class CheckError(ReproError):
    """A machine-checked invariant or differential oracle was violated.

    Raised by :mod:`repro.check` when a run's numbers break one of the
    paper-derived invariants (cycles below the §2.5 bound, traffic below
    the kernel footprint, ...) or when two redundant evaluation paths
    disagree.  Carries the rendered check report in its message.
    """


class ServiceError(ReproError):
    """A service request is malformed or cannot be admitted.

    Raised by the job runtime (:mod:`repro.service`) for unknown job
    kinds, non-content-addressable parameters, and submissions against
    a draining runtime; the HTTP layer maps it to a 4xx response
    instead of a stack trace.
    """


class TransientError(ReproError):
    """A retryable infrastructure failure (pool spawn, pickling, I/O).

    The supervised executor treats a ``TransientError`` that is *not*
    one of the subclasses below as "the pool cannot be used at all" and
    degrades to serial execution — the work itself is fine, only the
    parallel transport is broken.  Subclasses mark failures where the
    *work* misbehaved under supervision and retrying serially would be
    wrong.
    """


class WorkerCrashError(TransientError):
    """A worker process died (SIGKILL, OOM, hard crash) and the retry
    budget could not recover the affected cell.

    Carries ``incident`` — a structured description of the failed cells
    (request indices, attempt counts, last observed error) — so callers
    can report *which* cell is poisoned instead of a bare traceback.
    """

    def __init__(
        self, message: str, incident: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.incident: Dict[str, Any] = dict(incident or {})


class DeadlineExceeded(TransientError):
    """A supervised task ran past its per-chunk deadline on every
    attempt.  Carries the same structured ``incident`` payload as
    :class:`WorkerCrashError`."""

    def __init__(
        self, message: str, incident: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.incident: Dict[str, Any] = dict(incident or {})


class CacheCorruptionError(ReproError):
    """A persisted cache entry failed verification and was quarantined.

    The disk tier never *raises* this on the read path (a damaged store
    degrades to misses); it is raised by explicit integrity surfaces —
    ``repro doctor``'s strict probes and
    :meth:`repro.perf.diskcache.DiskCache.verify` with ``strict=True`` —
    and carries the structured ``incident`` record written next to the
    quarantined file.
    """

    def __init__(
        self, message: str, incident: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.incident: Dict[str, Any] = dict(incident or {})
