"""Setuptools shim.

Kept alongside ``pyproject.toml`` so editable installs work in offline
environments whose pip lacks the ``wheel`` package required by PEP 660
editable builds (``pip install -e . --no-build-isolation`` falls back to
the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
